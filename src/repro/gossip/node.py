"""One gossip peer: a warm shard backend, a version clock, a set digest.

A :class:`GossipNode` is the per-peer state of the anti-entropy mesh
(:mod:`repro.gossip.mesh`).  Its set lives in the *same*
:class:`~repro.service.backends.ShardBackend` family the asyncio service
serves — for the default Rateless IBLT scheme that is the warm
:class:`~repro.service.backends.WarmRibltBackend`, so every
reconciliation session a node ever answers re-reads one continuously
patched coded-symbol bank instead of re-encoding its set (§4.1's
universality, now N-directional).

Cheap staleness machinery, per the rate-compatible / pooled-sketch
designs (PAPERS.md: Mitzenmacher et al.; SNIPPETS.md: bami's
``PeerClock``):

* a **version clock** — the sum of the sharded set's per-shard
  versions, bumped by every mutation (including pushes applied by a
  responder session);
* a **set digest** (:class:`SetDigest`) — the XOR of the codec's keyed
  64-bit hash over all items, plus the count.  Equal sets always match;
  unequal sets collide with probability ~2⁻⁶⁴.  The digest is
  maintained incrementally through the node API and lazily recomputed
  when the backend mutated behind the node's back (a served session
  applying PUSH frames);
* a :class:`PeerView` per neighbour — what this node last heard of the
  peer's clock/digest and the version pair at the last confirmed sync,
  which lets a round skip a neighbour with provably nothing new before
  a single byte moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.api.registry import Scheme, get_scheme
from repro.protocol.machine import (
    InitiatorMachine,
    ResponderMachine,
    codec_of,
    hash64_of,
)
from repro.service.backends import ShardBackend, make_backend
from repro.service.shard import ShardedSet

_XOR_SEED = 0  # empty-set digest value


@dataclass(frozen=True)
class SetDigest:
    """A node's cheap set fingerprint: (version clock, XOR hash, count)."""

    version: int
    xor64: int
    count: int

    def matches(self, other: "SetDigest") -> bool:
        """Same set contents (whp) — versions may differ."""
        return self.xor64 == other.xor64 and self.count == other.count


@dataclass
class PeerView:
    """Everything a node knows about one neighbour's staleness."""

    peer_version: int = -1
    """The peer's version clock, as of the last digest heard from it."""
    peer_digest: Optional[SetDigest] = None
    in_sync: bool = False
    synced_local_version: int = -1
    """This node's own clock when the pair last confirmed sync."""
    synced_peer_version: int = -1
    """The peer's clock when the pair last confirmed sync."""
    last_exchange_round: int = -1
    """Mesh round of the last actual exchange (digest or full)."""
    suspect: bool = False
    """A round to this peer failed and it has not succeeded since."""
    failures: int = 0
    """Consecutive failed rounds (drives the contact backoff)."""
    next_contact_round: int = 0
    """Earliest mesh round this node will initiate to a suspect peer."""


class GossipNode:
    """A mesh peer: one set, one warm backend, per-neighbour clocks."""

    #: Contact-interval cap for failing peers, in mesh rounds: a peer's
    #: backoff doubles per consecutive failure (2, 4, 8, ...) up to here.
    MAX_BACKOFF_ROUNDS = 16

    def __init__(
        self,
        node_id: int,
        items: Iterable[bytes] = (),
        *,
        handle: Optional[Scheme] = None,
        scheme: str = "riblt",
        num_shards: int = 1,
        backend: Optional[ShardBackend] = None,
        **params: object,
    ) -> None:
        if backend is not None:
            # Adopt live shard state — e.g. a durable backend recovered
            # from disk, so the node's version clock (and therefore the
            # digest peers compare against their stale guard) survives
            # a restart instead of resetting to zero.
            materialised = list(items)
            if materialised or num_shards != 1 or params or handle is not None:
                raise ValueError(
                    "backend= is exclusive: the backend already fixes the "
                    "items, handle, shard count, and parameters"
                )
            handle = backend.handle
            self.node_id = node_id
            self.handle = handle
            self.codec = codec_of(handle)
            self.hash64 = hash64_of(handle, self.codec)
            self.backend = backend
            self.views: Dict[int, PeerView] = {}
            self._xor = _XOR_SEED
            for item in backend.sharded:
                self._xor ^= self.hash64(item)
            self._digest_version = self.version
            return
        materialised = list(items)
        if handle is None:
            handle = get_scheme(scheme, **params)
            if handle.params.symbol_size is None:
                if not materialised:
                    raise ValueError(
                        "an empty gossip node needs an explicit symbol_size"
                    )
                handle = handle.with_params(symbol_size=len(materialised[0]))
        self.node_id = node_id
        self.handle = handle
        self.codec = codec_of(handle)
        self.hash64 = hash64_of(handle, self.codec)
        sharded = ShardedSet(self.hash64, num_shards, materialised)
        self.backend: ShardBackend = make_backend(handle, sharded, self.codec)
        self.views: Dict[int, PeerView] = {}
        self._xor = _XOR_SEED
        for item in materialised:
            self._xor ^= self.hash64(item)
        self._digest_version = self.version

    # -- the set ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation clock (sum of per-shard versions)."""
        return sum(self.backend.sharded.versions)

    def __len__(self) -> int:
        return len(self.backend.sharded)

    def __contains__(self, item: bytes) -> bool:
        return item in self.backend.sharded

    def items(self) -> list:
        """The set as a sorted list (deterministic machine construction)."""
        return sorted(self.backend.sharded)

    def add(self, item: bytes) -> None:
        """Local churn: add one item (warm banks patched, digest folded)."""
        clean = self._digest_version == self.version
        self.backend.add(item)
        self._fold([item], clean)

    def remove(self, item: bytes) -> None:
        """Local churn: drop one item (XOR folding is its own inverse)."""
        clean = self._digest_version == self.version
        self.backend.remove(item)
        self._fold([item], clean)

    def add_many(self, items: Iterable[bytes]) -> None:
        """Batch churn: one warm-bank patch per touched shard."""
        items = items if isinstance(items, list) else list(items)
        if not items:
            return
        clean = self._digest_version == self.version
        self.backend.add_many(items)
        self._fold(items, clean)

    def learn(self, items: Iterable[bytes]) -> int:
        """Absorb items gained from a peer (duplicates are fine).

        Returns how many were actually new.  This is the apply side of a
        reconciliation round: the initiator feeds ``only_in_remote``
        here, and a sim-transport round feeds the responder the pushed
        items the same way.
        """
        fresh = [item for item in dict.fromkeys(items)
                 if item not in self.backend.sharded]
        if fresh:
            self.add_many(fresh)
        return len(fresh)

    def _fold(self, items: Iterable[bytes], was_clean: bool) -> None:
        """Fold a just-applied mutation batch into the cached digest.

        ``was_clean`` is whether the cache matched the backend *before*
        the mutation; if it did not (a served session pushed items in
        behind us), folding would mask the drift, so leave the cache
        stale and let :meth:`digest` rebuild it.
        """
        if not was_clean:
            return
        for item in items:
            self._xor ^= self.hash64(item)
        self._digest_version = self.version

    def digest(self) -> SetDigest:
        """The current set digest (recomputed only after backend drift)."""
        version = self.version
        if self._digest_version != version:
            # A responder session applied pushes directly to the backend
            # (or _fold saw drift): rebuild the XOR from the set.
            xor = _XOR_SEED
            hash64 = self.hash64
            for item in self.backend.sharded:
                xor ^= hash64(item)
            self._xor = xor
            self._digest_version = version
        return SetDigest(version, self._xor, len(self))

    # -- peer clocks -------------------------------------------------------

    def view_of(self, peer_id: int) -> PeerView:
        view = self.views.get(peer_id)
        if view is None:
            view = self.views[peer_id] = PeerView()
        return view

    def note_peer_digest(
        self, peer_id: int, digest: SetDigest, round_no: int
    ) -> None:
        """Record a digest heard from ``peer_id`` (any direction)."""
        view = self.view_of(peer_id)
        if digest.version < view.peer_version:
            return  # stale reordered information
        view.peer_version = digest.version
        view.peer_digest = digest
        view.last_exchange_round = round_no
        if view.in_sync and digest.version != view.synced_peer_version:
            view.in_sync = False  # the peer moved on since we synced

    def mark_synced(
        self, peer_id: int, peer_digest: SetDigest, round_no: int
    ) -> None:
        """The pair just confirmed equal sets; pin both clocks."""
        view = self.view_of(peer_id)
        view.in_sync = True
        view.peer_version = peer_digest.version
        view.peer_digest = peer_digest
        view.synced_local_version = self.version
        view.synced_peer_version = peer_digest.version
        view.last_exchange_round = round_no

    def mark_failed(self, peer_id: int, round_no: int) -> PeerView:
        """A round to ``peer_id`` died; suspect it and back off contact.

        Each consecutive failure doubles the contact interval (2, 4,
        8, ... rounds, capped at :attr:`MAX_BACKOFF_ROUNDS`) so a dead
        or overwhelmed peer is not re-hammered at full rate every
        round, while a recovering one is still probed within a bounded
        window.
        """
        view = self.view_of(peer_id)
        view.suspect = True
        view.failures += 1
        view.in_sync = False  # whatever we believed, the round disproved
        view.next_contact_round = round_no + min(
            1 << view.failures, self.MAX_BACKOFF_ROUNDS
        )
        return view

    def mark_contact_ok(self, peer_id: int) -> None:
        """A round to ``peer_id`` succeeded; restore the normal cadence.

        One success clears suspicion entirely — the peer is back inside
        the ordinary ``refresh_every`` window immediately.
        """
        view = self.views.get(peer_id)
        if view is not None and view.suspect:
            view.suspect = False
            view.failures = 0
            view.next_contact_round = 0

    def in_backoff(self, peer_id: int, round_no: int) -> bool:
        """True while a suspect peer's contact interval has not elapsed."""
        view = self.views.get(peer_id)
        return (
            view is not None
            and view.suspect
            and round_no < view.next_contact_round
        )

    def can_skip(self, peer_id: int, round_no: int, refresh_every: int) -> bool:
        """True when a round to ``peer_id`` may be skipped byte-free.

        Conservative: requires a confirmed sync, no local mutation since,
        no *observed* peer mutation since, and a recent enough exchange
        (``refresh_every`` rounds) so a peer that changed without ever
        initiating back cannot be ignored forever.
        """
        view = self.views.get(peer_id)
        if view is None or not view.in_sync:
            return False
        if self.version != view.synced_local_version:
            return False
        if view.peer_version != view.synced_peer_version:
            return False
        return (round_no - view.last_exchange_round) < refresh_every

    # -- protocol machines -------------------------------------------------

    def initiator(
        self,
        *,
        push: bool = True,
        max_symbols: Optional[int] = None,
        difference_bound: int = 0,
        use_estimator: bool = False,
    ) -> InitiatorMachine:
        """A fresh initiator (Bob side) over this node's current set."""
        return InitiatorMachine(
            self.handle,
            self.items(),
            num_shards=0,  # adopt the responder's shard count
            push=push,
            max_symbols=max_symbols,
            difference_bound=difference_bound,
            use_estimator=use_estimator,
        )

    def responder(
        self,
        *,
        block_size: int = 8,
        slow_start: bool = False,
        max_symbols_per_shard: Optional[int] = None,
        budget_grace: float = 0.0,
        use_estimator: bool = False,
    ) -> ResponderMachine:
        """A fresh responder (Alice side) serving this node's backend."""
        return ResponderMachine(
            self.backend,
            self.handle,
            block_size=block_size,
            slow_start=slow_start,
            max_symbols_per_shard=max_symbols_per_shard,
            budget_grace=budget_grace,
            use_estimator=use_estimator,
        )
