"""``repro.gossip`` — N-node anti-entropy over the protocol engine.

Every other layer of this repo reconciles exactly two peers.  This
package is the paper's headline deployment shape (§1, §7: block and
transaction relay) — an epidemic mesh where each node repeatedly
repairs against a changing neighbourhood — built entirely out of the
existing pieces:

* each :class:`GossipNode` stores its set in the same warm
  :class:`~repro.service.backends.ShardBackend` the asyncio service
  serves (one continuously patched coded-symbol bank, never re-encoded
  per peer);
* every full exchange drives the sans-io
  :class:`~repro.protocol.InitiatorMachine` /
  :class:`~repro.protocol.ResponderMachine` pair over a pluggable
  transport — the lock-step memory shuttle, lossy
  :class:`~repro.net.link.Link`s on a shared discrete-event simulator,
  or real asyncio TCP via :class:`~repro.service.ReconciliationServer`;
* but *most* exchanges never get that far: per-peer version clocks
  (:class:`~repro.gossip.node.PeerView`) skip provably-unchanged
  neighbours for free, and a ~14-byte :class:`SetDigest` exchange
  confirms already-equal sets before any coded symbol moves — so a
  round costs O(diff), not O(set).

Quick start::

    from repro.gossip import GossipMesh, GossipNode, make_nodes

    nodes = make_nodes(node_sets)          # list[set[bytes]]
    mesh = GossipMesh(nodes, topology="random", fanout=2, seed=7)
    report = mesh.run_until_converged()
    assert report.converged

CLI: ``repro gossip --nodes 32 --diff 0.01`` runs a synthetic mesh and
prints the per-round tier/byte breakdown against naive flooding.
"""

from typing import Iterable, Optional, Sequence

from repro.api.registry import Scheme, get_scheme
from repro.gossip.mesh import GossipMesh, build_topology, select_pairs
from repro.gossip.node import GossipNode, PeerView, SetDigest
from repro.gossip.rounds import (
    SESSION_FAILURES,
    GossipConfig,
    decode_digest,
    encode_digest,
    run_link_session,
    run_round,
)
from repro.gossip.stats import (
    ConvergenceReport,
    FloodingReport,
    MeshRoundStats,
    RoundOutcome,
    simulate_flooding,
)


def make_nodes(
    node_sets: Sequence[Iterable[bytes]],
    *,
    handle: Optional[Scheme] = None,
    scheme: str = "riblt",
    num_shards: int = 1,
    **params: object,
) -> list:
    """Build one :class:`GossipNode` per input set, sharing one scheme
    handle (and therefore one keyed hash — peers that disagree on the
    key cannot reconcile, exactly as in the two-party transports)."""
    if handle is None:
        handle = get_scheme(scheme, **params)
        if handle.params.symbol_size is None:
            probe = next(
                (item for members in node_sets for item in members), None
            )
            if probe is None:
                raise ValueError(
                    "all-empty gossip sets need an explicit symbol_size"
                )
            handle = handle.with_params(symbol_size=len(probe))
    return [
        GossipNode(node_id, members, handle=handle, num_shards=num_shards)
        for node_id, members in enumerate(node_sets)
    ]


__all__ = [
    "ConvergenceReport",
    "FloodingReport",
    "GossipConfig",
    "GossipMesh",
    "GossipNode",
    "MeshRoundStats",
    "PeerView",
    "RoundOutcome",
    "SESSION_FAILURES",
    "SetDigest",
    "build_topology",
    "decode_digest",
    "encode_digest",
    "make_nodes",
    "run_link_session",
    "run_round",
    "select_pairs",
    "simulate_flooding",
]
