"""The N-node mesh: topology, round scheduling, convergence tracking.

A :class:`GossipMesh` wires :class:`~repro.gossip.node.GossipNode`s into
a neighbourhood graph (ring, random regular-ish, or full) and runs
periodic anti-entropy rounds: each round, every node initiates
``fanout`` push-pull exchanges with randomly chosen neighbours, each
resolved at the cheapest tier (clock skip → digest exchange → full
rateless session; :mod:`repro.gossip.rounds`).

Transports
----------

``memory`` / ``service``
    Pairs run sequentially within a round and apply their diffs
    immediately, so updates chain transitively inside one round — the
    classic epidemic shape.  ``service`` additionally pushes every full
    session through real asyncio TCP against the responder's warm
    backend.
``sim``
    All of a round's full sessions ride their own
    :class:`~repro.net.link.Link` on ONE shared
    :class:`~repro.net.simulator.Simulator`, starting at the same
    virtual instant — a round is the concurrent thing it would be on a
    real network, and ``round_time`` is its virtual makespan.  Because
    sessions overlap, diffs (including pushes) are buffered and applied
    when the round's event heap drains; a mid-round mutation would
    otherwise invalidate every concurrent stream cursor reading the
    same warm bank (:class:`~repro.service.backends.StaleStream`).

Convergence is checked with the same digests the wire tier uses: the
mesh has converged when every node's :class:`SetDigest` matches (equal
XOR lane and count ⇒ equal sets, whp — tests verify exact equality
separately).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.gossip.node import GossipNode
from repro.gossip.rounds import (
    SESSION_FAILURES,
    GossipConfig,
    LinkSession,
    exchange_digests,
    confirm_sync,
    run_round,
)
from repro.gossip.stats import (
    ConvergenceReport,
    MeshRoundStats,
    RoundOutcome,
)
from repro.net.simulator import Simulator

#: Per-item overhead charged when a sim-round delivers pushed items out
#: of band (count prefix + shard hint, mirroring a PUSH frame header).
PUSH_HEADER_BYTES = 10

TOPOLOGIES = ("ring", "random", "full")


def build_topology(
    n: int, kind: str, degree: int, rng: random.Random
) -> List[set]:
    """Neighbour sets for ``n`` nodes; always connected, undirected.

    ``ring`` links i↔i+1; ``random`` starts from that ring (guaranteed
    connectivity) and adds random edges until the average degree reaches
    ``degree``; ``full`` links every pair.
    """
    if n < 2:
        raise ValueError(f"a mesh needs at least 2 nodes, got {n}")
    if kind not in TOPOLOGIES:
        raise ValueError(f"unknown topology {kind!r} (want {TOPOLOGIES})")
    neighbors: List[set] = [set() for _ in range(n)]

    def link(a: int, b: int) -> None:
        if a != b:
            neighbors[a].add(b)
            neighbors[b].add(a)

    if kind == "full":
        for i in range(n):
            neighbors[i] = set(range(n)) - {i}
        return neighbors
    for i in range(n):  # the connectivity ring
        link(i, (i + 1) % n)
    if kind == "random":
        target_edges = max(n, (n * degree) // 2)
        edges = n  # the ring's
        attempts = 0
        while edges < target_edges and attempts < 50 * target_edges:
            a = rng.randrange(n)
            b = rng.randrange(n)
            attempts += 1
            if a != b and b not in neighbors[a]:
                link(a, b)
                edges += 1
    return neighbors


def select_pairs(
    neighbors: Sequence[set], fanout: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """One round's (initiator, responder) schedule, deterministic in rng.

    Every node initiates to ``fanout`` distinct random neighbours (all
    of them when it has fewer).  Stand-alone so the flooding baseline
    can replay the *identical* schedule from an identically seeded rng.
    """
    pairs: List[Tuple[int, int]] = []
    for node_id in range(len(neighbors)):
        candidates = sorted(neighbors[node_id])
        picks = (
            candidates
            if len(candidates) <= fanout
            else rng.sample(candidates, fanout)
        )
        pairs.extend((node_id, peer) for peer in picks)
    return pairs


class GossipMesh:
    """Epidemic reconciliation over a fixed neighbourhood graph."""

    def __init__(
        self,
        nodes: Iterable[GossipNode],
        *,
        topology: str = "random",
        degree: int = 4,
        fanout: int = 2,
        seed: int = 0,
        config: Optional[GossipConfig] = None,
    ) -> None:
        self.nodes = list(nodes)
        if len({node.node_id for node in self.nodes}) != len(self.nodes):
            raise ValueError("node ids must be unique")
        self.config = config or GossipConfig()
        self.fanout = fanout
        self.seed = seed
        self.rng = random.Random(seed)
        self.topology = topology
        self.neighbors = build_topology(
            len(self.nodes), topology, degree, random.Random(seed ^ 0x70B0)
        )
        self.round_no = 0
        self.history: List[MeshRoundStats] = []

    # -- convergence -------------------------------------------------------

    @property
    def converged(self) -> bool:
        """All node digests match (equal sets, whp)."""
        first = self.nodes[0].digest()
        return all(
            node.digest().matches(first) for node in self.nodes[1:]
        )

    def union_size(self) -> int:
        """|union of all node sets| (diagnostics; O(total items))."""
        union: set = set()
        for node in self.nodes:
            union.update(node.backend.sharded)
        return len(union)

    # -- rounds ------------------------------------------------------------

    def run_round(self) -> MeshRoundStats:
        """Run one full mesh round; returns (and records) its stats."""
        self.round_no += 1
        pairs = select_pairs(self.neighbors, self.fanout, self.rng)
        stats = MeshRoundStats(self.round_no)
        if self.config.transport == "sim":
            self._run_sim_round(pairs, stats)
        else:
            for initiator_id, responder_id in pairs:
                outcome = run_round(
                    self.nodes[initiator_id],
                    self.nodes[responder_id],
                    self.round_no,
                    self.config,
                )
                stats.absorb(outcome)
        self.history.append(stats)
        return stats

    def run_until_converged(self, max_rounds: int = 32) -> ConvergenceReport:
        """Anti-entropy until every digest matches (or the cap is hit).

        ``report.rounds`` counts the rounds actually executed; the mesh
        is checked after each, so a converged mesh costs one more round
        of (cheap) digest confirmation only if you keep calling this.
        """
        start = len(self.history)
        for _ in range(max_rounds):
            self.run_round()
            if self.converged:
                break
        executed = self.history[start:]
        return ConvergenceReport(
            converged=self.converged,
            rounds=len(executed),
            per_round=executed,
        )

    # -- the shared-simulator round (sim transport) ------------------------

    def _run_sim_round(
        self, pairs: List[Tuple[int, int]], stats: MeshRoundStats
    ) -> None:
        """All full sessions of one round, concurrent in virtual time.

        Cheap tiers resolve first (they are a frame each way at most);
        every pair that needs a full session then gets its own link on
        one shared simulator.  Machines run with ``push`` disabled and
        every diff — both directions — is applied after the event heap
        drains, so no concurrent stream cursor ever observes a mutation
        (see the module docstring).
        """
        config = self.config
        sessions: List[Tuple[int, int, LinkSession, int]] = []
        sim = Simulator()
        for initiator_id, responder_id in pairs:
            x, y = self.nodes[initiator_id], self.nodes[responder_id]
            if x.in_backoff(y.node_id, self.round_no):
                stats.absorb(
                    RoundOutcome(x.node_id, y.node_id, "backoff")
                )
                continue
            if x.can_skip(y.node_id, self.round_no, config.refresh_every):
                stats.absorb(
                    RoundOutcome(x.node_id, y.node_id, "clock-skip")
                )
                continue
            matched, digest_bytes = exchange_digests(x, y, self.round_no)
            if matched:
                x.mark_contact_ok(y.node_id)
                y.mark_contact_ok(x.node_id)
                stats.absorb(
                    RoundOutcome(
                        x.node_id,
                        y.node_id,
                        "digest-skip",
                        digest_bytes=digest_bytes,
                    )
                )
                continue
            session = LinkSession(
                sim,
                x.initiator(
                    push=False,  # pushes are delivered after the round
                    max_symbols=config.max_symbols,
                    difference_bound=config.difference_bound,
                    use_estimator=config.use_estimator,
                ),
                y.responder(
                    block_size=config.block_size,
                    use_estimator=config.use_estimator,
                ),
                bandwidth_bps=config.bandwidth_bps,
                delay_s=config.delay_s,
                loss_rate=config.loss_rate,
                rng=random.Random(
                    config.seed
                    ^ (self.round_no << 16)
                    ^ (x.node_id << 8)
                    ^ y.node_id
                )
                if config.loss_rate
                else None,
            )
            session.start()
            sessions.append(
                (initiator_id, responder_id, session, digest_bytes)
            )
        sim.run(max_events=50_000_000)
        for initiator_id, responder_id, session, digest_bytes in sessions:
            x, y = self.nodes[initiator_id], self.nodes[responder_id]
            try:
                report, wire_bytes, completed_at = session.result()
            except SESSION_FAILURES as exc:
                x.mark_failed(y.node_id, self.round_no)
                if not config.tolerate_failures:
                    raise
                stats.absorb(
                    RoundOutcome(
                        x.node_id,
                        y.node_id,
                        "failed",
                        digest_bytes=digest_bytes,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            learned = x.learn(report.only_in_remote)
            delivered = 0
            if config.push and report.only_in_local:
                exclusives = sorted(report.only_in_local)
                delivered = y.learn(exclusives)
                wire_bytes += PUSH_HEADER_BYTES + sum(
                    len(item) for item in exclusives
                )
            confirm_sync(x, y, self.round_no)
            x.mark_contact_ok(y.node_id)
            y.mark_contact_ok(x.node_id)
            stats.absorb(
                RoundOutcome(
                    x.node_id,
                    y.node_id,
                    "full",
                    digest_bytes=digest_bytes,
                    session_bytes=wire_bytes,
                    symbols=report.symbols,
                    learned=learned,
                    delivered=delivered,
                    completion_time=completed_at,
                )
            )
