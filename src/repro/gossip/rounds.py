"""One anti-entropy exchange: clocks, then digests, then the engine.

:func:`run_round` resolves an initiator→responder pair at the cheapest
sufficient tier:

1. **clock skip** — the initiator's :class:`~repro.gossip.node.PeerView`
   proves nothing changed on either side since the last confirmed sync:
   zero bytes move.
2. **digest exchange** — each side ships its
   :class:`~repro.gossip.node.SetDigest` (a ~14-byte frame).  Equal
   digests confirm equal sets (whp): the pair marks itself synced and
   the round cost stays two digest frames, zero coded symbols.
3. **full session** — the digests differ, so the pair drives the exact
   :class:`~repro.protocol.InitiatorMachine` /
   :class:`~repro.protocol.ResponderMachine` pair every other transport
   uses, over the configured transport:

   * ``memory`` — the lock-step byte shuttle (cell-exact, byte-counted);
   * ``sim`` — a :class:`~repro.net.link.Link` on a shared
     :class:`~repro.net.simulator.Simulator`, with bandwidth
     serialisation, propagation delay, and loss-induced retransmission;
   * ``service`` — real asyncio TCP: the responder node's warm backend
     is hosted by a :class:`~repro.service.ReconciliationServer` and the
     initiator machine shuttles over the socket.

Failures never hang: the machines are sans-io and surface every
protocol/budget error as a typed exception, which the round re-raises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.api import SymbolBudgetExceeded
from repro.gossip.node import GossipNode, SetDigest
from repro.gossip.stats import RoundOutcome
from repro.net.link import Link
from repro.net.simulator import Simulator
from repro.protocol.events import MachineReport
from repro.protocol.machine import InitiatorMachine, ResponderMachine
from repro.service.errors import ProtocolError, ServiceError
from repro.service.framing import BodyReader, FrameError, pack_uvarints

#: What a dying full session can surface: typed budget/protocol errors
#: from either machine, framing garbage, and transport-level failures.
#: These degrade (suspect + backoff) under ``tolerate_failures``; other
#: exceptions are bugs and always propagate.
SESSION_FAILURES = (
    SymbolBudgetExceeded,
    ServiceError,
    FrameError,
    ConnectionError,
    OSError,
)

#: Tag byte opening a gossip digest frame (outside the service frame
#: catalogue: the digest exchange happens before any machine session).
DIGEST_TAG = 0x1D

#: Default staleness bound for the zero-byte clock skip: an in-sync pair
#: re-exchanges digests at least every this many rounds, so a peer that
#: mutated without ever initiating back is re-probed, bounding how long
#: a stale ``in_sync`` belief can survive.
DEFAULT_REFRESH_EVERY = 4


@dataclass
class GossipConfig:
    """Knobs shared by every round a mesh runs."""

    push: bool = True
    """Push-pull rounds: the initiator also pushes its exclusives."""

    block_size: int = 8
    """Coded symbols per SYMBOLS frame in full sessions."""

    max_symbols: Optional[int] = None
    """Initiator-side per-shard symbol budget (typed failure beyond)."""

    difference_bound: int = 0
    """Pre-sizing for fixed-capacity (sketch-mode) schemes."""

    use_estimator: bool = False
    """Run the strata exchange first (sketch-mode schemes only)."""

    refresh_every: int = DEFAULT_REFRESH_EVERY
    """Rounds an in-sync pair may clock-skip before re-proving it."""

    transport: str = "memory"
    """``memory`` | ``sim`` | ``service``."""

    bandwidth_bps: float = 20e6
    """Link bandwidth (sim transport)."""

    delay_s: float = 0.001
    """One-way propagation delay (sim transport)."""

    loss_rate: float = 0.0
    """Frame loss rate in [0, 1) (sim transport)."""

    seed: int = 0
    """Loss-model RNG seed base (sim transport)."""

    tolerate_failures: bool = True
    """Degrade instead of raise when a full session dies (budget blown,
    peer closed, transport error): the initiator marks the responder
    suspect — backing off its contact interval — and the round reports
    tier ``"failed"``.  ``False`` restores raise-through semantics for
    tests and callers that drive sessions directly."""


def encode_digest(digest: SetDigest) -> bytes:
    """Wire form of a digest frame: tag, version, count, XOR lanes."""
    return (
        bytes([DIGEST_TAG])
        + pack_uvarints(digest.version, digest.count)
        + digest.xor64.to_bytes(8, "big")
    )


def decode_digest(blob: bytes) -> SetDigest:
    """Parse a digest frame; raises ``ProtocolError`` on garbage."""
    if not blob or blob[0] != DIGEST_TAG:
        raise ProtocolError("not a gossip digest frame")
    try:
        reader = BodyReader(blob[1:])
        version = reader.uvarint()
        count = reader.uvarint()
        xor64 = int.from_bytes(reader.raw(8), "big")
        reader.expect_end()
    except ProtocolError:
        raise
    except Exception as exc:  # truncation, trailing junk, bad varints
        raise ProtocolError(f"malformed gossip digest frame: {exc}") from exc
    return SetDigest(version, xor64, count)


def exchange_digests(
    x: GossipNode, y: GossipNode, round_no: int
) -> Tuple[bool, int]:
    """Tier-2: swap digest frames; returns (sets match, bytes moved)."""
    request = encode_digest(x.digest())
    response = encode_digest(y.digest())
    x_digest = decode_digest(request)
    y_digest = decode_digest(response)
    y.note_peer_digest(x.node_id, x_digest, round_no)
    x.note_peer_digest(y.node_id, y_digest, round_no)
    matched = x_digest.matches(y_digest)
    if matched:
        x.mark_synced(y.node_id, y_digest, round_no)
        y.mark_synced(x.node_id, x_digest, round_no)
    return matched, len(request) + len(response)


def confirm_sync(x: GossipNode, y: GossipNode, round_no: int) -> bool:
    """Post-session bookkeeping: re-digest both sides, pin the clocks."""
    x_digest = x.digest()
    y_digest = y.digest()
    x.note_peer_digest(y.node_id, y_digest, round_no)
    y.note_peer_digest(x.node_id, x_digest, round_no)
    if x_digest.matches(y_digest):
        x.mark_synced(y.node_id, y_digest, round_no)
        y.mark_synced(x.node_id, x_digest, round_no)
        return True
    return False


def pump_counted(
    initiator: InitiatorMachine, responder: ResponderMachine
) -> Tuple[MachineReport, int]:
    """The lock-step in-memory shuttle, with full wire-byte accounting.

    Same drive order as :func:`repro.protocol.pump.pump`, but every
    byte either machine emits is counted (frames, handshake, STATS —
    everything), because the mesh's deliverable is total bytes on the
    wire, not just coded payload.
    """
    initiator.start()
    responder.start()
    wire_bytes = 0
    now = 0.0
    while not initiator.finished:
        out = initiator.take_output()
        if out and not responder.finished:
            wire_bytes += len(out)
            responder.bytes_received(out)
            continue
        back = responder.take_output()
        if back:
            wire_bytes += len(back)
            initiator.bytes_received(back)
            continue
        if responder.wants_tick:
            responder.tick(now)
            continue
        delay = responder.next_tick_delay(now)
        if delay is not None and not responder.finished:
            now += delay
            responder.tick(now)
            continue
        initiator.peer_closed()
    _raise_typed(initiator, responder)
    assert initiator.report is not None
    return initiator.report, wire_bytes


def _raise_typed(
    initiator: InitiatorMachine, responder: ResponderMachine
) -> None:
    """Re-raise a failed session's typed error (responder root cause
    preferred when the initiator only saw the peer vanish)."""
    if initiator.failed is None:
        return
    error = initiator.failed
    if responder.failed is not None and type(error) is ProtocolError:
        error = responder.failed
    raise error


class LinkSession:
    """One machine pair riding its own :class:`Link` on a shared sim.

    The event wiring mirrors
    :func:`repro.net.protocols.machine_sync.simulate_machine_sync` —
    the responder saturates its transmitter (the Fig 13 shape), frames
    arrive in order after serialisation + delay (+ retransmission under
    loss) — but many sessions coexist on one
    :class:`~repro.net.simulator.Simulator`, which is what an N-node
    mesh round is.
    """

    def __init__(
        self,
        sim: Simulator,
        initiator: InitiatorMachine,
        responder: ResponderMachine,
        *,
        bandwidth_bps: float,
        delay_s: float,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.initiator = initiator
        self.responder = responder
        self.link = Link(
            sim, bandwidth_bps, delay_s, loss_rate=loss_rate, rng=rng
        )
        self.decoded_at: Optional[float] = None
        self._production_scheduled = False

    def start(self) -> None:
        self.initiator.start()
        self.responder.start()
        self._flush_initiator()
        self._schedule_production()

    # -- plumbing ----------------------------------------------------------

    def _flush_responder(self) -> None:
        out = self.responder.take_output()
        if out:
            self.link.send_to_b(len(out), out, self._deliver_to_initiator)
        self._schedule_production()

    def _flush_initiator(self) -> None:
        out = self.initiator.take_output()
        if out:
            self.link.send_to_a(len(out), out, self._deliver_to_responder)
        if self.initiator.decoded and self.decoded_at is None:
            self.decoded_at = self.sim.now

    def _schedule_production(self) -> None:
        if self._production_scheduled or not self.responder.wants_tick:
            return
        self._production_scheduled = True
        self.sim.schedule_at(
            max(self.sim.now, self.link.a_to_b.busy_until), self._produce
        )

    def _produce(self) -> None:
        self._production_scheduled = False
        if self.initiator.finished or not self.responder.wants_tick:
            return
        self.responder.tick(self.sim.now)
        self._flush_responder()

    def _deliver_to_initiator(self, message) -> None:
        if self.initiator.finished:
            return
        self.initiator.bytes_received(message.payload)
        self._flush_initiator()

    def _deliver_to_responder(self, message) -> None:
        if self.responder.finished:
            return
        self.responder.bytes_received(message.payload)
        self._flush_responder()

    # -- outcome -----------------------------------------------------------

    @property
    def wire_bytes(self) -> int:
        """Bytes the link carried, both directions, retransmits included."""
        return self.link.a_to_b.bytes_sent + self.link.b_to_a.bytes_sent

    def result(self) -> Tuple[MachineReport, int, float]:
        """(report, wire bytes, completion time); raises typed on failure."""
        _raise_typed(self.initiator, self.responder)
        report = self.initiator.report
        if report is None:
            if self.responder.failed is not None:
                raise self.responder.failed
            raise ProtocolError(
                "simulated gossip session never completed (machines wedged)"
            )
        completed = self.decoded_at if self.decoded_at is not None else self.sim.now
        return report, self.wire_bytes, completed


def run_link_session(
    initiator: InitiatorMachine,
    responder: ResponderMachine,
    *,
    bandwidth_bps: float,
    delay_s: float,
    loss_rate: float = 0.0,
    rng: Optional[random.Random] = None,
    sim: Optional[Simulator] = None,
) -> Tuple[MachineReport, int, float]:
    """Drive one machine pair over a (possibly lossy) simulated link."""
    sim = sim or Simulator()
    session = LinkSession(
        sim,
        initiator,
        responder,
        bandwidth_bps=bandwidth_bps,
        delay_s=delay_s,
        loss_rate=loss_rate,
        rng=rng,
    )
    session.start()
    sim.run(max_events=50_000_000)
    return session.result()


def run_round(
    x: GossipNode,
    y: GossipNode,
    round_no: int,
    config: Optional[GossipConfig] = None,
) -> RoundOutcome:
    """One anti-entropy exchange, initiator ``x`` → responder ``y``.

    ``memory`` and ``service`` transports apply the learned/pushed items
    immediately; the ``sim`` transport is driven by the mesh's shared
    round loop instead (see :meth:`GossipMesh.run_round`), which calls
    this only for the two cheap tiers.
    """
    config = config or GossipConfig()
    if x.in_backoff(y.node_id, round_no):
        return RoundOutcome(x.node_id, y.node_id, "backoff")
    if x.can_skip(y.node_id, round_no, config.refresh_every):
        return RoundOutcome(x.node_id, y.node_id, "clock-skip")
    matched, digest_bytes = exchange_digests(x, y, round_no)
    if matched:
        x.mark_contact_ok(y.node_id)
        y.mark_contact_ok(x.node_id)
        return RoundOutcome(
            x.node_id, y.node_id, "digest-skip", digest_bytes=digest_bytes
        )
    try:
        if config.transport == "service":
            report, wire_bytes = _run_service_session(x, y, config)
        else:
            initiator = x.initiator(
                push=config.push,
                max_symbols=config.max_symbols,
                difference_bound=config.difference_bound,
                use_estimator=config.use_estimator,
            )
            responder = y.responder(
                block_size=config.block_size,
                use_estimator=config.use_estimator,
            )
            if config.transport == "sim":
                report, wire_bytes, _ = run_link_session(
                    initiator,
                    responder,
                    bandwidth_bps=config.bandwidth_bps,
                    delay_s=config.delay_s,
                    loss_rate=config.loss_rate,
                    rng=random.Random(config.seed ^ (round_no << 16)
                                      ^ (x.node_id << 8) ^ y.node_id)
                    if config.loss_rate
                    else None,
                )
            else:
                report, wire_bytes = pump_counted(initiator, responder)
    except SESSION_FAILURES as exc:
        x.mark_failed(y.node_id, round_no)
        if not config.tolerate_failures:
            raise
        return RoundOutcome(
            x.node_id,
            y.node_id,
            "failed",
            digest_bytes=digest_bytes,
            error=f"{type(exc).__name__}: {exc}",
        )
    learned = x.learn(report.only_in_remote)
    confirm_sync(x, y, round_no)
    x.mark_contact_ok(y.node_id)
    y.mark_contact_ok(x.node_id)
    return RoundOutcome(
        x.node_id,
        y.node_id,
        "full",
        digest_bytes=digest_bytes,
        session_bytes=wire_bytes,
        symbols=report.symbols,
        learned=learned,
        delivered=report.pushed,
    )


def _run_service_session(
    x: GossipNode, y: GossipNode, config: GossipConfig
) -> Tuple[MachineReport, int]:
    """Full session over real asyncio TCP: ``y``'s warm backend is
    hosted by a :class:`~repro.service.ReconciliationServer` and ``x``'s
    initiator machine shuttles over the socket."""
    import asyncio

    from repro.service.server import ReconciliationServer, ServerConfig

    async def go() -> Tuple[MachineReport, int]:
        server = ReconciliationServer(
            backend=y.backend,
            config=ServerConfig(block_size=max(config.block_size, 8)),
        )
        await server.start()
        try:
            host, port = server.address
            return await _shuttle(host, port, config)
        finally:
            await server.close()

    async def _shuttle(host: str, port: int, config: GossipConfig):
        machine = x.initiator(
            push=config.push,
            max_symbols=config.max_symbols,
            difference_bound=config.difference_bound,
            use_estimator=config.use_estimator,
        )
        reader, writer = await asyncio.open_connection(host, port)
        wire_bytes = 0
        try:
            machine.start()
            while not machine.finished:
                out = machine.take_output()
                if out:
                    wire_bytes += len(out)
                    writer.write(out)
                    await writer.drain()
                if machine.finished:
                    break
                data = await reader.read(1 << 16)
                if not data:
                    machine.peer_closed()
                else:
                    wire_bytes += len(data)
                    machine.bytes_received(data)
            out = machine.take_output()
            if out:
                wire_bytes += len(out)
                writer.write(out)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if machine.failed is not None:
            raise machine.failed
        assert machine.report is not None
        return machine.report, wire_bytes

    return asyncio.run(go())
