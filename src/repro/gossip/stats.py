"""Per-round and per-run accounting for the gossip mesh.

Every anti-entropy round resolves each selected peer pair at exactly one
of three tiers, and the accounting keeps them apart because the whole
point of the clock/digest short-circuit is *where the bytes go*:

``clock-skip``
    Zero bytes: the initiator's :class:`~repro.gossip.node.PeerView`
    says neither side changed since the last sync, so nothing is sent.
``digest-skip``
    Digest frames only: the peers exchanged their
    :class:`~repro.gossip.node.SetDigest` (a dozen bytes each way),
    found them equal, and stopped — zero coded-symbol bytes.
``full``
    A real reconciliation session through the protocol engine; bytes
    are the actual framed wire traffic, both directions.

Two degraded tiers cover fault tolerance (``GossipConfig.
tolerate_failures``):

``failed``
    The session died mid-flight (budget blown, frame error, connection
    reset).  The initiator marks the responder suspect and backs off;
    digest bytes already spent are charged.
``backoff``
    Zero bytes: the peer is suspect and its backed-off contact
    interval has not elapsed, so the initiator skipped it entirely.

:func:`simulate_flooding` is the naive baseline the benchmark compares
against: the same topology, schedule, and round structure, but every
session ships both full sets instead of a diff.  It is charged
*conservatively* — flooding stops paying the moment its sets converge —
so the reported gossip/flooding byte ratio understates the win.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

#: Fixed per-message overhead charged to a flooding transfer (length
#: header + tag), mirroring what a framed full-set dump would cost.
FLOOD_MSG_OVERHEAD = 10


@dataclass
class RoundOutcome:
    """One initiator→responder exchange, resolved at one tier."""

    initiator: int
    responder: int
    tier: str  # "clock-skip" | "digest-skip" | "full" | "failed" | "backoff"
    digest_bytes: int = 0
    session_bytes: int = 0
    symbols: int = 0
    learned: int = 0
    """Items the initiator gained from the responder."""
    delivered: int = 0
    """Items the initiator pushed into the responder."""
    completion_time: float = 0.0
    """Virtual seconds (sim transport only; 0 elsewhere)."""
    error: Optional[str] = None
    """``"ExcType: message"`` for a ``failed`` tier; ``None`` otherwise."""

    @property
    def wire_bytes(self) -> int:
        return self.digest_bytes + self.session_bytes


@dataclass
class MeshRoundStats:
    """Aggregate of every pair exchange in one mesh round."""

    round_no: int
    sessions: int = 0
    clock_skips: int = 0
    digest_skips: int = 0
    full_syncs: int = 0
    failed_syncs: int = 0
    backoffs: int = 0
    digest_bytes: int = 0
    session_bytes: int = 0
    symbols: int = 0
    items_moved: int = 0
    round_time: float = 0.0
    """Virtual duration of the round (sim transport; 0 elsewhere)."""

    @property
    def wire_bytes(self) -> int:
        return self.digest_bytes + self.session_bytes

    def absorb(self, outcome: RoundOutcome) -> None:
        self.sessions += 1
        if outcome.tier == "clock-skip":
            self.clock_skips += 1
        elif outcome.tier == "digest-skip":
            self.digest_skips += 1
        elif outcome.tier == "failed":
            self.failed_syncs += 1
        elif outcome.tier == "backoff":
            self.backoffs += 1
        else:
            self.full_syncs += 1
        self.digest_bytes += outcome.digest_bytes
        self.session_bytes += outcome.session_bytes
        self.symbols += outcome.symbols
        self.items_moved += outcome.learned + outcome.delivered
        self.round_time = max(self.round_time, outcome.completion_time)


@dataclass
class ConvergenceReport:
    """Outcome of :meth:`GossipMesh.run_until_converged`."""

    converged: bool
    rounds: int
    per_round: list = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return sum(r.wire_bytes for r in self.per_round)

    @property
    def digest_bytes(self) -> int:
        return sum(r.digest_bytes for r in self.per_round)

    @property
    def session_bytes(self) -> int:
        return sum(r.session_bytes for r in self.per_round)

    @property
    def symbols(self) -> int:
        return sum(r.symbols for r in self.per_round)

    @property
    def full_syncs(self) -> int:
        return sum(r.full_syncs for r in self.per_round)

    @property
    def digest_skips(self) -> int:
        return sum(r.digest_skips for r in self.per_round)

    @property
    def clock_skips(self) -> int:
        return sum(r.clock_skips for r in self.per_round)

    @property
    def failed_syncs(self) -> int:
        return sum(r.failed_syncs for r in self.per_round)

    @property
    def backoffs(self) -> int:
        return sum(r.backoffs for r in self.per_round)

    @property
    def items_moved(self) -> int:
        return sum(r.items_moved for r in self.per_round)


@dataclass
class FloodingReport:
    """Naive full-set flooding over the same schedule (baseline)."""

    converged: bool
    rounds: int
    total_bytes: int
    transfers: int


def simulate_flooding(
    sets: Sequence[Iterable[bytes]],
    item_size: int,
    select_pairs: Callable[[int, random.Random], list],
    rng: random.Random,
    max_rounds: int,
    *,
    push: bool = True,
) -> FloodingReport:
    """Account the naive baseline: every session ships both full sets.

    ``select_pairs(round_no, rng)`` must yield the same
    ``(initiator, responder)`` schedule the gossip mesh uses (pass the
    mesh's own selector with an identically seeded ``rng`` for an
    apples-to-apples comparison).  Sets converge by union exactly as a
    push-pull full-set exchange would; accounting stops the moment all
    sets are equal, which can only *flatter* the baseline.
    """
    state = [set(members) for members in sets]
    total_bytes = 0
    transfers = 0

    def _converged() -> bool:
        first = state[0]
        return all(members == first for members in state[1:])

    for round_no in range(1, max_rounds + 1):
        for initiator, responder in select_pairs(round_no, rng):
            a, b = state[initiator], state[responder]
            total_bytes += len(a) * item_size + FLOOD_MSG_OVERHEAD
            total_bytes += len(b) * item_size + FLOOD_MSG_OVERHEAD
            transfers += 1
            union = a | b
            state[initiator] = union
            if push:
                state[responder] = union
        if _converged():
            return FloodingReport(True, round_no, total_bytes, transfers)
    return FloodingReport(_converged(), max_rounds, total_bytes, transfers)
