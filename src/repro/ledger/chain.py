"""A chain of blocks mutating the ledger, with per-height trie snapshots.

Every 12-second block updates a few hundred existing accounts and creates
a few new ones (defaults follow mainnet's account-churn order of
magnitude).  The persistent trie makes snapshots free: the chain just
remembers one root hash per height, and block diffs allow reconstructing
any height's item set by rolling back from the head.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.baselines.merkle.trie import NodeStore, Trie
from repro.ledger.account import ADDRESS_BYTES, Account, account_item

BLOCK_SECONDS = 12
BLOCKS_PER_HOUR = 3600 // BLOCK_SECONDS


@dataclass
class BlockDiff:
    """State writes of one block: (address, old_state | None, new_state)."""

    number: int
    writes: list[tuple[bytes, Optional[bytes], bytes]]

    @property
    def touched_accounts(self) -> int:
        return len(self.writes)


class Chain:
    """Genesis plus a growing list of blocks, all snapshots retained."""

    def __init__(
        self,
        num_accounts: int,
        seed: int = 2024,
        updates_per_block: int = 120,
        creates_per_block: int = 10,
    ) -> None:
        if num_accounts < 1:
            raise ValueError("need at least one genesis account")
        self._rng = random.Random(seed)
        self.updates_per_block = updates_per_block
        self.creates_per_block = creates_per_block
        self.store = NodeStore()
        self.state: dict[bytes, bytes] = {}
        self.addresses: list[bytes] = []
        self.blocks: list[BlockDiff] = []
        trie = Trie(self.store)
        for _ in range(num_accounts):
            address = self._new_address()
            encoded = self._random_account().encode()
            self.state[address] = encoded
            self.addresses.append(address)
            trie = trie.update(address, encoded)
        self.roots: list[bytes] = [trie.root_hash]  # roots[h] = root at height h

    # -- random generators ----------------------------------------------------

    def _new_address(self) -> bytes:
        while True:
            address = self._rng.randbytes(ADDRESS_BYTES)
            if address not in self.state:
                return address

    def _random_account(self) -> Account:
        return Account(
            nonce=self._rng.randrange(1 << 20),
            balance=self._rng.randrange(1 << 68),
            code_hash=self._rng.randbytes(32),
        )

    # -- chain growth ------------------------------------------------------------

    @property
    def head(self) -> int:
        """Current block height (genesis = 0)."""
        return len(self.blocks)

    def advance(self, blocks: int = 1) -> None:
        """Mine ``blocks`` new blocks of synthetic account churn."""
        for _ in range(blocks):
            self._mine_one()

    def _mine_one(self) -> None:
        rng = self._rng
        writes: list[tuple[bytes, Optional[bytes], bytes]] = []
        touched: set[bytes] = set()
        updates = min(self.updates_per_block, len(self.addresses))
        for address in rng.sample(self.addresses, updates):
            if address in touched:
                continue
            touched.add(address)
            old = self.state[address]
            new = (
                Account.decode(old).bumped(rng.randrange(-(1 << 40), 1 << 40)).encode()
            )
            writes.append((address, old, new))
        for _ in range(self.creates_per_block):
            address = self._new_address()
            new = self._random_account().encode()
            writes.append((address, None, new))
            self.addresses.append(address)
        trie = Trie(self.store, self.roots[-1])
        for address, _, new in writes:
            self.state[address] = new
            trie = trie.update(address, new)
        self.blocks.append(BlockDiff(number=len(self.blocks) + 1, writes=writes))
        self.roots.append(trie.root_hash)

    # -- snapshots ------------------------------------------------------------------

    def trie_at(self, height: int) -> Trie:
        """The trie as of block ``height`` (0 = genesis)."""
        return Trie(self.store, self.roots[height])

    def state_at(self, height: int) -> dict[bytes, bytes]:
        """The full address → account map at ``height``, by rollback."""
        if not 0 <= height <= self.head:
            raise ValueError(f"height must be in 0..{self.head}")
        snapshot = dict(self.state)
        for block in reversed(self.blocks[height:]):
            for address, old, _ in block.writes:
                if old is None:
                    del snapshot[address]
                else:
                    snapshot[address] = old
        return snapshot

    def items_at(self, height: int) -> set[bytes]:
        """The 92-byte reconciliation item set at ``height``."""
        return {
            account_item(address, state)
            for address, state in self.state_at(height).items()
        }

    def difference_size(self, height_a: int, height_b: int) -> int:
        """|items(a) △ items(b)| without materialising both full sets."""
        lo, hi = sorted((height_a, height_b))
        old_values: dict[bytes, Optional[bytes]] = {}
        new_values: dict[bytes, bytes] = {}
        for block in self.blocks[lo:hi]:
            for address, old, new in block.writes:
                if address not in old_values:
                    old_values[address] = old
                new_values[address] = new
        d = 0
        for address, final in new_values.items():
            first = old_values[address]
            if first == final:
                continue  # value returned to its original state
            d += 2 if first is not None else 1
        return d
