"""Sync scenarios: "Bob went offline at height h, Alice is at head" (§7.3).

A scenario packages everything both protocols need: the two item sets for
set reconciliation, and the two tries (plus Bob's private node store) for
state heal.  ``measure_riblt_plan`` runs the *real* codec on the scenario
and measures per-symbol CPU costs, producing the plan the network
simulator replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.merkle.trie import NodeStore, Trie
from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamWriter
from repro.ledger.account import ITEM_BYTES
from repro.ledger.chain import Chain
from repro.net.protocols.riblt_sync import SyncPlan


@dataclass
class SyncScenario:
    """One staleness experiment: Bob at ``bob_height``, Alice at head."""

    staleness_blocks: int
    alice_items: set[bytes]
    bob_items: set[bytes]
    alice_trie: Trie
    bob_trie: Trie
    bob_store: NodeStore
    difference_size: int

    @property
    def staleness_seconds(self) -> int:
        from repro.ledger.chain import BLOCK_SECONDS

        return self.staleness_blocks * BLOCK_SECONDS


def build_scenario(chain: Chain, staleness_blocks: int) -> SyncScenario:
    """Materialise the sync problem for a given staleness."""
    if staleness_blocks > chain.head:
        raise ValueError(
            f"staleness {staleness_blocks} exceeds chain height {chain.head}"
        )
    bob_height = chain.head - staleness_blocks
    alice_trie = chain.trie_at(chain.head)
    bob_trie = chain.trie_at(bob_height)
    return SyncScenario(
        staleness_blocks=staleness_blocks,
        alice_items=chain.items_at(chain.head),
        bob_items=chain.items_at(bob_height),
        alice_trie=alice_trie,
        bob_trie=bob_trie,
        bob_store=bob_trie.reachable_store(),
        difference_size=chain.difference_size(chain.head, bob_height),
    )


def measure_riblt_plan(
    scenario: SyncScenario,
    codec: SymbolCodec | None = None,
    chunk_symbols: int = 256,
    calibrated_line_rate_bps: float | None = None,
    block_symbols: int = 1,
) -> SyncPlan:
    """Run the real reconciliation once, measuring symbols and CPU costs.

    Returns the :class:`SyncPlan` that ``simulate_riblt_sync`` replays.
    Encoding cost is *not* charged to the timeline by default: §7.3's
    Alice maintains a universal stream incrementally across peers, so
    coded symbols are read, not computed, at request time.

    ``calibrated_line_rate_bps`` replaces the measured (interpreter-speed)
    per-symbol decode cost with the rate the paper measured for its Go
    implementation — "Rateless IBLT … can saturate a 170 Mbps link using
    one CPU core" (§7.3).  The §7.3 benches use this so the network
    experiment reproduces the *protocol* dynamics rather than the Python
    constant factor (a documented substitution).
    """
    if codec is None:
        codec = SymbolCodec(ITEM_BYTES)
    t0 = time.perf_counter()
    alice = RatelessEncoder(codec, scenario.alice_items)
    bob = RatelessEncoder(codec, scenario.bob_items)
    setup_seconds = time.perf_counter() - t0

    writer = SymbolStreamWriter(codec, set_size=alice.set_size)
    bytes_total = len(writer.header())
    decoder = RatelessDecoder(codec)
    t0 = time.perf_counter()
    symbols = 0
    while not decoder.decoded:
        if block_symbols > 1:
            # Bank-backed block path (``block_symbols − 1`` max overshoot).
            remote = alice.produce_block(block_symbols)
            bytes_total += len(writer.write_block(remote))
            remote.subtract_in_place(bob.produce_block(block_symbols))
            decoder.add_coded_block(remote)
            symbols += block_symbols
        else:
            remote = alice.produce_next()
            bytes_total += len(writer.write(remote))
            local = bob.produce_next()
            decoder.add_subtracted(remote, local)
            symbols += 1
    stream_seconds = time.perf_counter() - t0
    bytes_per_symbol = bytes_total / symbols
    if calibrated_line_rate_bps is not None:
        decode_per_symbol = bytes_per_symbol * 8.0 / calibrated_line_rate_bps
    else:
        # The measured loop runs both encoders and the decoder; Bob's
        # online cost is his encoder + decoder, approximately 2/3.
        decode_per_symbol = stream_seconds * (2.0 / 3.0) / symbols
    return SyncPlan(
        symbols_needed=symbols,
        bytes_per_symbol=bytes_per_symbol,
        decode_seconds_per_symbol=decode_per_symbol,
        encode_seconds_per_symbol=0.0,
        chunk_symbols=chunk_symbols,
    )
