"""Synthetic Ethereum-like ledger (the §7.3 workload substrate).

The paper replays mainnet snapshots (230 M accounts, blocks
18908312-18938312).  Offline and at laptop scale we synthesise the same
*shape*: a key-value table of 20-byte addresses → 72-byte account states,
advanced by 12-second blocks that each touch a few hundred accounts, with
persistent Merkle-trie snapshots at every height.  Difference size grows
linearly with staleness exactly as in the traces; all reported metrics
are per-difference, so the downscaled N preserves the comparisons.
"""

from repro.ledger.account import ACCOUNT_BYTES, ADDRESS_BYTES, ITEM_BYTES, Account
from repro.ledger.chain import BlockDiff, Chain
from repro.ledger.workload import SyncScenario, build_scenario

__all__ = [
    "ACCOUNT_BYTES",
    "ADDRESS_BYTES",
    "Account",
    "BlockDiff",
    "Chain",
    "ITEM_BYTES",
    "SyncScenario",
    "build_scenario",
]
