"""Accounts: 20-byte addresses and 72-byte states, as in §7.3.

"The ledger state is a key-value table, where the keys are 20-byte wallet
addresses, and the values are 72-byte account states such as its balance."
A reconciliation *item* is the concatenation address ∥ state (92 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

ADDRESS_BYTES = 20
ACCOUNT_BYTES = 72
ITEM_BYTES = ADDRESS_BYTES + ACCOUNT_BYTES


@dataclass(frozen=True)
class Account:
    """One account state: nonce (8 B) + balance (32 B) + code hash (32 B)."""

    nonce: int
    balance: int
    code_hash: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.nonce < (1 << 64):
            raise ValueError("nonce out of range")
        if not 0 <= self.balance < (1 << 256):
            raise ValueError("balance out of range")
        if len(self.code_hash) != 32:
            raise ValueError("code hash must be 32 bytes")

    def encode(self) -> bytes:
        """Fixed 72-byte encoding."""
        return (
            self.nonce.to_bytes(8, "little")
            + self.balance.to_bytes(32, "little")
            + self.code_hash
        )

    @classmethod
    def decode(cls, data: bytes) -> "Account":
        if len(data) != ACCOUNT_BYTES:
            raise ValueError(f"account encoding must be {ACCOUNT_BYTES} bytes")
        return cls(
            nonce=int.from_bytes(data[:8], "little"),
            balance=int.from_bytes(data[8:40], "little"),
            code_hash=data[40:],
        )

    def bumped(self, balance_delta: int) -> "Account":
        """The account after one more transaction."""
        new_balance = max(0, self.balance + balance_delta)
        return Account(self.nonce + 1, new_balance, self.code_hash)


def account_item(address: bytes, state: bytes) -> bytes:
    """The 92-byte reconciliation item for one table entry."""
    if len(address) != ADDRESS_BYTES:
        raise ValueError(f"address must be {ADDRESS_BYTES} bytes")
    if len(state) != ACCOUNT_BYTES:
        raise ValueError(f"state must be {ACCOUNT_BYTES} bytes")
    return address + state
