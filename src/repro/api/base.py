"""The uniform reconciliation interface every scheme adapts to.

One vocabulary for seven very different algorithms:

* :class:`SetReconciler` — build a sketch from items, optionally mutate
  it (``add``/``remove``), ship it (``serialize``/``wire_size``), combine
  it with the peer's (``subtract``), and recover the symmetric
  difference (``decode`` → :class:`~repro.core.decoder.DecodeResult`).
* :class:`StreamingReconciler` — the rateless extension: the sketch is
  an unbounded prefix-decodable stream (``produce_next``/``absorb``)
  instead of a fixed-size blob.
* :class:`Capabilities` — per-scheme flags the generic driver in
  :mod:`repro.api.session` dispatches on.
* :class:`ReconcileResult` — the scheme-independent outcome record.

Direction convention (matches the rest of the repo): in
``a_rec.subtract(b_rec)``, ``a_rec`` plays Alice (the remote sender —
possibly a deserialized sketch) and ``b_rec`` plays Bob (the local,
*live* receiver, built from his own items).  The decoded ``remote`` list
is then A \\ B and ``local`` is B \\ A.  Schemes whose decoders need the
receiver's full set (CPI, PinSketch attribution, Merkle heal) read it
from ``b_rec`` — which is exactly what a real deployment's receiver has.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Set

from repro.core.decoder import DecodeResult
from repro.core.session import SymbolBudgetExceeded as _CoreSymbolBudgetExceeded


class UnsupportedOperation(NotImplementedError):
    """The scheme cannot perform the requested operation (by design)."""


class ReconcileError(RuntimeError):
    """Reconciliation did not complete within the configured budget."""


class SymbolBudgetExceeded(ReconcileError, _CoreSymbolBudgetExceeded):
    """A streaming reconciliation exhausted ``max_symbols`` undecoded.

    Subclasses both :class:`ReconcileError` (so generic ``except
    ReconcileError`` handlers keep working) and the core
    :class:`repro.core.session.SymbolBudgetExceeded` (so servers built
    on either layer can catch one type to drop runaway sessions).
    """

    def __init__(self, message: str, symbols_sent: int, max_symbols: int) -> None:
        _CoreSymbolBudgetExceeded.__init__(
            self, message, symbols_sent=symbols_sent, max_symbols=max_symbols
        )


@dataclass(frozen=True)
class Capabilities:
    """What a scheme can do; the generic driver dispatches on these."""

    streaming: bool = False
    """Produces an unbounded coded stream; decodes from any prefix."""

    fixed_capacity: bool = False
    """The sketch must be sized for the difference ``d`` in advance."""

    needs_estimator: bool = False
    """Always runs (and is charged for) a difference-size estimator."""

    incremental: bool = False
    """Supports both ``add`` and ``remove`` after construction."""

    serializable: bool = True
    """``serialize``/``deserialize`` round-trip through bytes."""


@dataclass(frozen=True)
class SchemeParams:
    """Base class for per-scheme parameter dataclasses.

    ``symbol_size`` (ℓ, the fixed byte width of every item) is the one
    parameter every scheme shares.  Leave it ``None`` to have the
    registry infer it from the first item at build time.
    """

    symbol_size: Optional[int] = None


@dataclass
class ReconcileResult:
    """Scheme-independent outcome of one full reconciliation.

    ``symbols_used`` counts the scheme's own coded units (coded symbols,
    IBLT cells, syndromes, polynomial evaluations, trie nodes...);
    ``bytes_on_wire`` is the comparable cross-scheme cost.  As in
    :class:`repro.core.session.ReconcileOutcome`, ``overhead`` is 0.0
    when the sets were already equal.
    """

    only_in_a: Set[bytes]
    only_in_b: Set[bytes]
    bytes_on_wire: int
    symbols_used: int
    scheme: str
    rounds: int = 1
    symbol_size: Optional[int] = None
    """The scheme's configured item width ℓ (``params.symbol_size``).

    Carried so :attr:`byte_overhead` normalises by the *configured*
    width, not by whatever item happens to come out of the recovered
    sets first — probing an arbitrary item would silently misreport the
    Fig 7 metric under mixed-width accounting.
    """

    difference_size: int = field(init=False)

    def __post_init__(self) -> None:
        self.difference_size = len(self.only_in_a) + len(self.only_in_b)

    @property
    def overhead(self) -> float:
        """Coded units spent per recovered difference (0.0 when d = 0)."""
        if self.difference_size == 0:
            return 0.0
        return self.symbols_used / self.difference_size

    @property
    def byte_overhead(self) -> float:
        """Wire bytes per difference byte — the Fig 7 metric (0.0 when d = 0)."""
        if self.difference_size == 0:
            return 0.0
        item = self.symbol_size
        if item is None:  # legacy fallback: probe one recovered item
            item = len(next(iter(self.only_in_a | self.only_in_b)))
        return self.bytes_on_wire / (self.difference_size * item)


class SetReconciler(ABC):
    """Uniform wrapper around one scheme's sketch of one set.

    Subclasses are constructed through the classmethods ``from_items``
    and ``deserialize`` (the registry binds the right parameter
    dataclass), never directly.
    """

    scheme: str = "?"  # stamped by registry registration
    params: SchemeParams

    # Adapters whose ``from_items`` accepts an ``item_hashes`` keyword
    # (precomputed keyed 64-bit hashes, reused for checksums) set True;
    # ``Scheme.new`` only forwards the hashes when the class opts in.
    accepts_item_hashes: bool = False

    # -- construction (adapter contract) ---------------------------------

    @classmethod
    @abstractmethod
    def from_items(
        cls, items: Sequence[bytes], params: SchemeParams
    ) -> "SetReconciler":
        """Build a live sketch of ``items``."""

    @classmethod
    def deserialize(cls, blob: bytes, params: SchemeParams) -> "SetReconciler":
        """Rebuild a received sketch from ``serialize()`` output."""
        raise UnsupportedOperation(f"{cls.__name__} does not deserialize")

    @classmethod
    def params_for_difference(
        cls, params: SchemeParams, difference: int
    ) -> SchemeParams:
        """Parameters sized so a ``difference``-item gap decodes w.h.p.

        Fixed-capacity schemes must override; rateless/rate-compatible
        schemes may return ``params`` unchanged.
        """
        return params

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        """Account one new set item in the existing sketch."""
        raise UnsupportedOperation(f"{type(self).__name__} does not support add()")

    def remove(self, item: bytes) -> None:
        """Remove one item from the existing sketch."""
        raise UnsupportedOperation(f"{type(self).__name__} does not support remove()")

    # -- wire -------------------------------------------------------------

    @abstractmethod
    def serialize(self) -> bytes:
        """The sketch as bytes (what Alice would transmit)."""

    @abstractmethod
    def wire_size(self) -> int:
        """Transmitted size in bytes under the paper's §7.1 accounting."""

    # -- reconciliation ---------------------------------------------------

    @abstractmethod
    def subtract(self, other: "SetReconciler") -> "SetReconciler":
        """Difference sketch; ``other`` must be the live local side."""

    @abstractmethod
    def decode(self) -> DecodeResult:
        """Recover the symmetric difference from a subtracted sketch.

        Capacity overflow is reported as ``success=False``, never as an
        exception — the generic driver retries with a larger sketch.
        """

    def decode_wire_bytes(self, result: DecodeResult) -> int:
        """Bytes a deployment shipped to reach this decode.

        Defaults to the full sketch; rate-compatible and interactive
        schemes override (MET counts only the consumed block prefix,
        Merkle heal counts its request/response transcript).
        """
        return self.wire_size()


class StreamingReconciler(SetReconciler):
    """Rateless extension: the sketch is an endless, incremental stream."""

    @abstractmethod
    def produce_next(self) -> bytes:
        """Serialise the next coded unit(s) of this side's stream."""

    def produce_block(self, block_size: int) -> bytes:
        """Serialise the next ``block_size`` coded units in one payload.

        Default is a compatibility loop over :meth:`produce_next`;
        adapters with a batch production path (Rateless IBLT's
        bank-backed encoder) override it.
        """
        return b"".join(self.produce_next() for _ in range(block_size))

    @abstractmethod
    def absorb(self, payload: bytes) -> bool:
        """Consume the peer's next payload; True once fully decoded."""

    @property
    def symbols_absorbed(self) -> int:
        """Coded units consumed by ``absorb`` so far.

        The default derives it from :meth:`stream_result`, which may
        materialise the recovered items; adapters with an O(1) counter
        override it (hot path: the service client reads this per frame).
        """
        return self.stream_result().symbols_used

    @property
    @abstractmethod
    def decoded(self) -> bool:
        """True once the whole symmetric difference has been recovered."""

    @abstractmethod
    def stream_result(self) -> DecodeResult:
        """Snapshot of what ``absorb`` has recovered so far."""


def as_item_list(items: Iterable[bytes], symbol_size: Optional[int]) -> list[bytes]:
    """Materialise and validate a uniform-width item collection."""
    out = list(items)
    if out:
        width = symbol_size if symbol_size is not None else len(out[0])
        # set(map(len, ...)) sweeps the lengths at C speed; the loop
        # only reruns to name the offender when validation fails.
        if set(map(len, out)) != {width}:
            bad = next(len(item) for item in out if len(item) != width)
            raise ValueError(f"items must all be {width} bytes; got {bad}")
    return out
