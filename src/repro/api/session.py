"""The scheme-generic reconciliation driver: ``reconcile`` + ``Session``.

One call, any scheme::

    from repro.api import reconcile

    result = reconcile(alice_items, bob_items, scheme="pinsketch")

The driver dispatches on the scheme's capability flags:

* **streaming** — a :class:`Session` streams Alice's coded units to Bob
  until he signals decoded (subsumes
  :class:`repro.core.session.ReconciliationSession`, which remains as
  the scheme-specific fast path).
* **fixed_capacity** — sketches must be provisioned: an explicit
  ``difference_bound`` sizes them directly; otherwise a strata-estimator
  exchange is run first (and charged to the wire), exactly the
  estimator-then-sized-sketch composition deployments use.  Undershoot
  is survived by retrying with a doubled bound, each retry charged.
* otherwise — one-shot protocol schemes (MET's rate-compatible prefix
  decode, Merkle's interactive heal): build both sides, subtract,
  decode, and let the adapter account the bytes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.api.base import (
    ReconcileError,
    ReconcileResult,
    StreamingReconciler,
    SymbolBudgetExceeded,
)
from repro.api.registry import Scheme, get_scheme
from repro.baselines.strata import StrataEstimator

# Sketches sized from a (noisy) strata estimate get this headroom; the
# retry loop doubles from there if the estimate still undershot.
ESTIMATE_MARGIN = 1.25

# Give-up bound for fixed-capacity retries.
DEFAULT_MAX_ROUNDS = 4


class Session:
    """One live streaming reconciliation between two in-memory sets.

    Generalises :class:`repro.core.session.ReconciliationSession` to any
    registered streaming scheme: ``step()`` moves one payload from Alice
    to Bob, ``run()`` iterates until Bob has the whole difference.
    """

    def __init__(
        self,
        alice_items: Iterable[bytes],
        bob_items: Iterable[bytes],
        scheme: str | Scheme = "riblt",
        **params: object,
    ) -> None:
        if isinstance(scheme, str):
            handle = get_scheme(scheme, **params)
        else:
            if params:
                raise TypeError(
                    "pass parameters either in the Scheme handle or as kwargs, not both"
                )
            handle = scheme
        if not handle.capabilities.streaming:
            raise ValueError(
                f"scheme {handle.name!r} is not streaming; use repro.api.reconcile"
            )
        self.scheme = handle.name
        self.alice = handle.new(alice_items)
        self.bob = handle.new(bob_items)
        assert isinstance(self.alice, StreamingReconciler)
        assert isinstance(self.bob, StreamingReconciler)
        self.bytes_sent = 0
        self.steps = 0

    @property
    def decoded(self) -> bool:
        return self.bob.decoded

    def step(self) -> bool:
        """Move one coded payload Alice → Bob; True once decoded."""
        payload = self.alice.produce_next()
        self.bytes_sent += len(payload)
        self.steps += 1
        return self.bob.absorb(payload)

    def step_block(self, block_size: int) -> bool:
        """Move ``block_size`` coded units in one payload; True once decoded.

        Identical bytes on the wire to ``block_size`` single steps;
        termination is detected at block granularity.
        """
        payload = self.alice.produce_block(block_size)
        self.bytes_sent += len(payload)
        self.steps += block_size
        return self.bob.absorb(payload)

    def run(
        self, max_symbols: Optional[int] = None, block_size: int = 1
    ) -> ReconcileResult:
        """Stream until decoded (or raise after ``max_symbols`` payloads).

        ``block_size > 1`` moves coded units in batches, riding the
        scheme's block fast path where it has one (up to
        ``block_size − 1`` units of overshoot past the decode point).
        """
        while not self.decoded:
            if max_symbols is not None and self.steps >= max_symbols:
                raise SymbolBudgetExceeded(
                    f"{self.scheme}: no decode within {max_symbols} coded symbols",
                    symbols_sent=self.steps,
                    max_symbols=max_symbols,
                )
            if block_size > 1:
                self.step_block(block_size)
            else:
                self.step()
        result = self.bob.stream_result()
        return ReconcileResult(
            only_in_a=set(result.remote),
            only_in_b=set(result.local),
            bytes_on_wire=self.bytes_sent,
            symbols_used=result.symbols_used,
            scheme=self.scheme,
        )


def _estimate_difference(
    alice_items: list[bytes], bob_items: list[bytes]
) -> tuple[int, int]:
    """Strata-estimator exchange: (estimated d, wire bytes charged)."""
    est_a = StrataEstimator.from_items(alice_items)
    est_b = StrataEstimator.from_items(bob_items)
    # Bob estimates from Alice's shipped summary; only hers crosses the wire.
    return est_b.estimate(est_a), est_a.wire_size()


def _fixed_reconcile(
    handle: Scheme,
    alice_items: list[bytes],
    bob_items: list[bytes],
    difference_bound: Optional[int],
    max_rounds: int,
) -> ReconcileResult:
    bytes_total = 0
    rounds = 0
    if handle.capabilities.needs_estimator or difference_bound is None:
        estimate, estimator_bytes = _estimate_difference(alice_items, bob_items)
        bytes_total += estimator_bytes
        rounds += 1
        bound = max(1, math.ceil(estimate * ESTIMATE_MARGIN))
        if difference_bound is not None:
            bound = max(bound, difference_bound)
    else:
        bound = max(1, difference_bound)
    for _ in range(max_rounds):
        sized = handle.sized_for(bound)
        alice = sized.new(alice_items)
        bob = sized.new(bob_items)
        diff = alice.subtract(bob)
        result = diff.decode()
        rounds += 1
        bytes_total += diff.decode_wire_bytes(result)
        if result.success:
            return ReconcileResult(
                only_in_a=set(result.remote),
                only_in_b=set(result.local),
                bytes_on_wire=bytes_total,
                symbols_used=result.symbols_used,
                scheme=handle.name,
                rounds=rounds,
            )
        bound *= 2
    raise ReconcileError(
        f"{handle.name}: difference exceeded capacity for {max_rounds} "
        f"doublings (last bound {bound // 2})"
    )


def _one_shot_reconcile(
    handle: Scheme, alice_items: list[bytes], bob_items: list[bytes]
) -> ReconcileResult:
    alice = handle.new(alice_items)
    bob = handle.new(bob_items)
    diff = alice.subtract(bob)
    result = diff.decode()
    if not result.success:
        raise ReconcileError(f"{handle.name}: sketch did not decode")
    return ReconcileResult(
        only_in_a=set(result.remote),
        only_in_b=set(result.local),
        bytes_on_wire=diff.decode_wire_bytes(result),
        symbols_used=result.symbols_used,
        scheme=handle.name,
    )


def reconcile(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    scheme: str = "riblt",
    *,
    difference_bound: Optional[int] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_symbols: Optional[int] = None,
    block_size: int = 1,
    **params: object,
) -> ReconcileResult:
    """Compute A △ B with any registered scheme.

    ``difference_bound`` pre-sizes fixed-capacity schemes (streaming and
    protocol schemes ignore it); without it they fall back to a strata-
    estimator exchange.  An *undershot* bound is normally detected as a
    decode failure and retried with doubled capacity — but detection is
    best-effort: a syndrome sketch provisioned far below the true
    difference can alias to a plausible wrong answer (a known PinSketch
    property), so treat an explicit bound as a promise, not a hint.
    ``max_symbols`` bounds streaming schemes; ``max_rounds`` bounds
    fixed-capacity retries; ``block_size`` batches streaming payloads
    (see :meth:`Session.run`).  Remaining keyword arguments go to the
    scheme's parameter dataclass — see ``get_scheme(name)`` errors for
    each scheme's knobs.

    >>> a = {b"%07d" % i for i in range(50)}
    >>> b = {b"%07d" % i for i in range(2, 52)}
    >>> out = reconcile(a, b, scheme="riblt")
    >>> sorted(out.only_in_a) == [b"0000000", b"0000001"]
    True
    """
    if difference_bound is not None and difference_bound < 0:
        raise ValueError(f"difference_bound must be >= 0, got {difference_bound}")
    handle = get_scheme(scheme, **params)
    a = list(dict.fromkeys(alice_items))
    b = list(dict.fromkeys(bob_items))
    if handle.capabilities.streaming:
        return Session(a, b, handle).run(max_symbols=max_symbols, block_size=block_size)
    if handle.capabilities.fixed_capacity:
        return _fixed_reconcile(handle, a, b, difference_bound, max_rounds)
    return _one_shot_reconcile(handle, a, b)
