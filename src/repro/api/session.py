"""The scheme-generic reconciliation driver: ``reconcile`` + ``Session``.

One call, any scheme::

    from repro.api import reconcile

    result = reconcile(alice_items, bob_items, scheme="pinsketch")

Since the sans-io engine landed, this module is a *thin wrapper*: both
entry points build a matched :class:`~repro.protocol.InitiatorMachine`
(Bob) / :class:`~repro.protocol.ResponderMachine` (Alice) pair and pump
them entirely in memory (:mod:`repro.protocol.pump`) — the exact same
state machine the simulated-link and TCP transports drive.  Capability
dispatch is unchanged:

* **streaming** — the engine's STREAM mode, lock-step so accounting is
  cell-exact (:class:`Session` exposes the legacy ``step()``/``run()``
  surface over it, byte-identical on the wire to the pre-engine driver);
* **fixed_capacity** — the engine's SKETCH mode: an explicit
  ``difference_bound`` sizes the sketch directly; otherwise the
  strata-estimator exchange (ESTIMATE frame) runs first and is charged
  to the wire.  Undershoot is survived by doubling RETRYs, each charged;
* **one-shot serializable** (MET's rate-compatible prefix) — SKETCH
  mode without retries; the adapter accounts the consumed prefix;
* **unserializable** (Merkle's interactive heal) — stays in-process:
  build both sides, subtract, decode, let the adapter account the bytes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.api.base import (
    ReconcileError,
    ReconcileResult,
    SymbolBudgetExceeded,
    as_item_list,
)
from repro.api.registry import Scheme, get_scheme

# Sketches sized from a (noisy) strata estimate get this headroom; the
# retry loop doubles from there if the estimate still undershot.
# Deliberately an independent literal (importing the engine's canonical
# repro.protocol.machine.ESTIMATE_MARGIN at module scope would recreate
# the import cycle this module's lazy _engine() exists to avoid);
# reconcile() reads it at call time, so patching it here still works.
ESTIMATE_MARGIN = 1.25

# Give-up bound for fixed-capacity retries (the engine's
# repro.protocol.machine.DEFAULT_MAX_ROUNDS holds the same value).
DEFAULT_MAX_ROUNDS = 4


def _engine():
    """The protocol engine, imported lazily to keep import cycles at bay."""
    from repro.protocol import InitiatorMachine, memory_responder, pump

    return InitiatorMachine, memory_responder, pump


def _resolve_symbol_size(
    handle: Scheme, a: Sequence[bytes], b: Sequence[bytes]
) -> Scheme:
    if handle.params.symbol_size is not None:
        return handle
    probe = a[0] if a else (b[0] if b else None)
    if probe is None:
        raise ValueError(
            f"scheme {handle.name!r}: symbol_size must be given explicitly "
            "when building from an empty set"
        )
    return handle.with_params(symbol_size=len(probe))


def _resolve_handle(scheme, params: dict) -> Scheme:
    if isinstance(scheme, str):
        return get_scheme(scheme, **params)
    if params:
        raise TypeError(
            "pass parameters either in the Scheme handle or as kwargs, not both"
        )
    return scheme


class Session:
    """One live streaming reconciliation between two in-memory sets.

    A lock-step pump over the engine: ``step()`` moves one coded payload
    Alice → Bob (one ``tick`` of the responder, absorbed immediately),
    ``run()`` iterates until Bob has the whole difference.  Wire bytes
    and symbol counts match the pre-engine driver exactly.
    """

    def __init__(
        self,
        alice_items: Iterable[bytes],
        bob_items: Iterable[bytes],
        scheme: str | Scheme = "riblt",
        **params: object,
    ) -> None:
        handle = _resolve_handle(scheme, params)
        if not handle.capabilities.streaming:
            raise ValueError(
                f"scheme {handle.name!r} is not streaming; use repro.api.reconcile"
            )
        a = as_item_list(alice_items, handle.params.symbol_size)
        b = as_item_list(bob_items, handle.params.symbol_size)
        handle = _resolve_symbol_size(handle, a, b)
        initiator_cls, memory_responder, _ = _engine()
        self.scheme = handle.name
        self.handle = handle
        self._initiator = initiator_cls(handle, b)
        self._responder = memory_responder(handle, a)
        self.steps = 0
        # Handshake now (HELLO/WELCOME), so bad parameters surface in the
        # constructor like they always did, and step() is pure data flow.
        self._initiator.start()
        self._responder.start()
        self._shuttle()

    def _shuttle(self) -> None:
        """Move every pending frame between the two machines."""
        moved = True
        while moved and not self._initiator.finished:
            moved = False
            out = self._initiator.take_output()
            if out and not self._responder.finished:
                self._responder.bytes_received(out)
                moved = True
            back = self._responder.take_output()
            if back:
                self._initiator.bytes_received(back)
                moved = True
        if self._initiator.failed is not None:
            raise self._initiator.failed

    @property
    def decoded(self) -> bool:
        return self._initiator.decoded

    @property
    def bytes_sent(self) -> int:
        """Coded payload bytes Alice has emitted so far (§6 accounting)."""
        return self._initiator.payload_bytes

    def step(self) -> bool:
        """Move one coded payload Alice → Bob; True once decoded."""
        return self._step(1)

    def step_block(self, block_size: int) -> bool:
        """Move ``block_size`` coded units in one payload; True once decoded.

        Identical bytes on the wire to ``block_size`` single steps;
        termination is detected at block granularity.
        """
        return self._step(block_size)

    def _step(self, block_size: int) -> bool:
        if not self.decoded:
            self._responder.block_size = block_size
            before = self._initiator.payload_bytes
            self._responder.tick()
            self.steps += block_size
            self._shuttle()
            if not self.decoded and self._initiator.payload_bytes == before:
                # The tick moved no payload: the responder died silently
                # (e.g. an internal error with no ERROR frame).  Surface
                # the root cause instead of spinning forever.
                self._initiator.peer_closed()
                if self._responder.failed is not None:
                    raise self._responder.failed
                assert self._initiator.failed is not None
                raise self._initiator.failed
        return self.decoded

    def run(
        self, max_symbols: Optional[int] = None, block_size: int = 1
    ) -> ReconcileResult:
        """Stream until decoded (or raise after ``max_symbols`` payloads).

        ``block_size > 1`` moves coded units in batches, riding the
        scheme's block fast path where it has one (up to
        ``block_size − 1`` units of overshoot past the decode point).
        """
        while not self.decoded:
            if max_symbols is not None and self.steps >= max_symbols:
                raise SymbolBudgetExceeded(
                    f"{self.scheme}: no decode within {max_symbols} coded symbols",
                    symbols_sent=self.steps,
                    max_symbols=max_symbols,
                )
            self._step(block_size if block_size > 1 else 1)
        report = self._initiator.report
        if report is None:  # the closing frames are still in flight
            self._shuttle()
            report = self._initiator.report
        assert report is not None
        return ReconcileResult(
            only_in_a=set(report.only_in_remote),
            only_in_b=set(report.only_in_local),
            bytes_on_wire=report.payload_bytes,
            symbols_used=report.symbols,
            scheme=self.scheme,
            symbol_size=report.symbol_size,
        )


def _one_shot_reconcile(
    handle: Scheme, alice_items: list, bob_items: list
) -> ReconcileResult:
    """In-process path for schemes that cannot be framed (Merkle heal)."""
    alice = handle.new(alice_items)
    bob = handle.new(bob_items)
    diff = alice.subtract(bob)
    result = diff.decode()
    if not result.success:
        raise ReconcileError(f"{handle.name}: sketch did not decode")
    return ReconcileResult(
        only_in_a=set(result.remote),
        only_in_b=set(result.local),
        bytes_on_wire=diff.decode_wire_bytes(result),
        symbols_used=result.symbols_used,
        scheme=handle.name,
        symbol_size=handle.params.symbol_size,
    )


def reconcile(
    alice_items: Iterable[bytes],
    bob_items: Iterable[bytes],
    scheme: str = "riblt",
    *,
    difference_bound: Optional[int] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    max_symbols: Optional[int] = None,
    block_size: int = 1,
    **params: object,
) -> ReconcileResult:
    """Compute A △ B with any registered scheme.

    ``difference_bound`` pre-sizes fixed-capacity schemes (streaming and
    protocol schemes ignore it); without it they fall back to a strata-
    estimator exchange.  An *undershot* bound is normally detected as a
    decode failure and retried with doubled capacity — but detection is
    best-effort: a syndrome sketch provisioned far below the true
    difference can alias to a plausible wrong answer (a known PinSketch
    property), so treat an explicit bound as a promise, not a hint.
    ``max_symbols`` bounds streaming schemes; ``max_rounds`` bounds
    fixed-capacity retries; ``block_size`` batches streaming payloads
    (see :meth:`Session.run`).  Remaining keyword arguments go to the
    scheme's parameter dataclass — see ``get_scheme(name)`` errors for
    each scheme's knobs.

    >>> a = {b"%07d" % i for i in range(50)}
    >>> b = {b"%07d" % i for i in range(2, 52)}
    >>> out = reconcile(a, b, scheme="riblt")
    >>> sorted(out.only_in_a) == [b"0000000", b"0000001"]
    True
    """
    if difference_bound is not None and difference_bound < 0:
        raise ValueError(f"difference_bound must be >= 0, got {difference_bound}")
    handle = get_scheme(scheme, **params)
    a = list(dict.fromkeys(alice_items))
    b = list(dict.fromkeys(bob_items))
    if handle.capabilities.streaming:
        return Session(a, b, handle).run(
            max_symbols=max_symbols, block_size=block_size
        )
    if not handle.capabilities.serializable:
        return _one_shot_reconcile(handle, a, b)
    a = as_item_list(a, handle.params.symbol_size)
    b = as_item_list(b, handle.params.symbol_size)
    handle = _resolve_symbol_size(handle, a, b)
    initiator_cls, memory_responder, pump = _engine()
    fixed = handle.capabilities.fixed_capacity
    use_estimator = fixed and (
        handle.capabilities.needs_estimator or difference_bound is None
    )
    bound = 0
    if fixed and difference_bound is not None:
        bound = max(1, difference_bound)
    initiator = initiator_cls(
        handle,
        b,
        difference_bound=bound,
        max_rounds=max_rounds if fixed else 1,
        use_estimator=use_estimator,
        estimate_margin=ESTIMATE_MARGIN,
    )
    responder = memory_responder(handle, a, use_estimator=use_estimator)
    report = pump(initiator, responder)
    assert report is not None
    return ReconcileResult(
        only_in_a=set(report.only_in_remote),
        only_in_b=set(report.only_in_local),
        bytes_on_wire=report.accounted_bytes,
        symbols_used=report.symbols,
        scheme=handle.name,
        rounds=report.rounds,
        symbol_size=report.symbol_size,
    )
