"""String-keyed scheme registry: ``get_scheme("riblt")`` and friends.

Every reconciliation scheme in the repo registers itself here under a
stable name, together with its capability flags and parameter dataclass.
Benchmarks, examples, the CLI, and the network protocols all select
schemes through this registry, so "same workload, any scheme" is one
string away::

    from repro.api import get_scheme, available_schemes

    handle = get_scheme("pinsketch", symbol_size=8, capacity=20)
    sketch = handle.new(alice_items)

Adapters live in :mod:`repro.api.adapters`; importing :mod:`repro.api`
populates the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterable, Optional, Sequence, Type

from repro.api.base import (
    Capabilities,
    SchemeParams,
    SetReconciler,
    as_item_list,
)


@dataclass(frozen=True)
class SchemeInfo:
    """One registry entry: identity, behaviour flags, and classes."""

    name: str
    summary: str
    capabilities: Capabilities
    param_class: Type[SchemeParams]
    reconciler_class: Type[SetReconciler]


_REGISTRY: dict[str, SchemeInfo] = {}


def register_scheme(
    name: str,
    *,
    summary: str,
    capabilities: Capabilities,
    param_class: Type[SchemeParams],
    reconciler_class: Type[SetReconciler],
) -> SchemeInfo:
    """Add a scheme to the registry (called at adapter import time)."""
    if name in _REGISTRY:
        raise ValueError(f"scheme {name!r} is already registered")
    info = SchemeInfo(name, summary, capabilities, param_class, reconciler_class)
    _REGISTRY[name] = info
    reconciler_class.scheme = name
    return info


def available_schemes() -> list[str]:
    """Registered scheme names, sorted."""
    return sorted(_REGISTRY)


def scheme_info(name: str) -> SchemeInfo:
    """The registry entry for ``name`` (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        ) from None


class Scheme:
    """A scheme bound to concrete parameters — the user-facing handle."""

    def __init__(self, info: SchemeInfo, params: SchemeParams) -> None:
        self.info = info
        self.params = params

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def capabilities(self) -> Capabilities:
        return self.info.capabilities

    def with_params(self, **overrides: object) -> "Scheme":
        """A new handle with some parameters replaced."""
        return Scheme(self.info, replace(self.params, **overrides))

    def sized_for(self, difference: int) -> "Scheme":
        """A handle whose sketch is provisioned for ``difference`` items."""
        params = self.info.reconciler_class.params_for_difference(
            self.params, difference
        )
        return Scheme(self.info, params)

    def _bound_params(self, items: Sequence[bytes]) -> SchemeParams:
        params = self.params
        if params.symbol_size is None:
            if not items:
                raise ValueError(
                    f"scheme {self.name!r}: symbol_size must be given explicitly "
                    "when building from an empty set"
                )
            params = replace(params, symbol_size=len(items[0]))
        return params

    def new(
        self,
        items: Iterable[bytes],
        *,
        item_hashes: Optional[Sequence[int]] = None,
    ) -> SetReconciler:
        """Build a live sketch of ``items`` (symbol_size inferred if unset).

        ``item_hashes`` — the codec hasher's keyed 64-bit hash of each
        item, in order — lets schemes that opt in (``accepts_item_hashes``)
        reuse e.g. shard-placement hashes for checksums instead of
        hashing every item a second time.  Schemes that don't opt in
        silently ignore them (the hashes are a pure optimisation).
        """
        materialised = as_item_list(items, self.params.symbol_size)
        params = self._bound_params(materialised)
        cls = self.info.reconciler_class
        if item_hashes is not None and getattr(cls, "accepts_item_hashes", False):
            return cls.from_items(
                materialised, params, item_hashes=list(item_hashes)
            )
        return cls.from_items(materialised, params)

    def deserialize(self, blob: bytes) -> SetReconciler:
        """Rebuild a received sketch (needs an explicit symbol_size)."""
        if self.params.symbol_size is None:
            raise ValueError(
                f"scheme {self.name!r}: deserialize needs an explicit symbol_size"
            )
        return self.info.reconciler_class.deserialize(blob, self.params)

    def __repr__(self) -> str:
        return f"Scheme({self.name!r}, {self.params!r})"


def get_scheme(name: str, **params: object) -> Scheme:
    """Look up ``name`` and bind keyword parameters to its dataclass.

    Unknown keyword arguments raise ``TypeError`` with the scheme's
    accepted parameter names, so callers discover each scheme's knobs
    without reading the adapter.
    """
    info = scheme_info(name)
    accepted = {f.name for f in fields(info.param_class)}
    unknown = set(params) - accepted
    if unknown:
        raise TypeError(
            f"scheme {name!r} does not accept {sorted(unknown)}; "
            f"accepted parameters: {sorted(accepted)}"
        )
    return Scheme(info, info.param_class(**params))  # type: ignore[arg-type]
