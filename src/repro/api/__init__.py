"""``repro.api`` — one interface, every reconciliation scheme.

The paper's comparison ("Rateless IBLT vs regular IBLT, PinSketch, CPI,
MET, Merkle heal, across workloads") requires running *the same
workload* over *any scheme*.  This package makes that a one-liner:

>>> from repro.api import available_schemes, reconcile
>>> "riblt" in available_schemes() and len(available_schemes()) >= 6
True
>>> a = {b"item-%03d" % i for i in range(100)}
>>> b = {b"item-%03d" % i for i in range(5, 105)}
>>> result = reconcile(a, b, scheme="riblt")
>>> len(result.only_in_a), len(result.only_in_b)
(5, 5)

Layers:

:mod:`repro.api.base`
    The :class:`SetReconciler` / :class:`StreamingReconciler` interface,
    capability flags, and the scheme-independent
    :class:`ReconcileResult`.
:mod:`repro.api.registry`
    String-keyed scheme registry — :func:`get_scheme`,
    :func:`available_schemes`, :func:`register_scheme` for third-party
    schemes.
:mod:`repro.api.adapters`
    The seven in-repo schemes behind the interface.
:mod:`repro.api.session`
    The generic driver: :func:`reconcile` (capability-dispatched) and
    the streaming :class:`Session`.
"""

from repro.api.base import (
    Capabilities,
    ReconcileError,
    ReconcileResult,
    SchemeParams,
    SetReconciler,
    StreamingReconciler,
    SymbolBudgetExceeded,
    UnsupportedOperation,
)
from repro.api.registry import (
    Scheme,
    SchemeInfo,
    available_schemes,
    get_scheme,
    register_scheme,
    scheme_info,
)

# Importing the adapters populates the registry.
import repro.api.adapters  # noqa: E402,F401  (registration side effect)

from repro.api.session import Session, reconcile  # noqa: E402  (needs registry)

__all__ = [
    "Capabilities",
    "ReconcileError",
    "ReconcileResult",
    "Scheme",
    "SchemeInfo",
    "SchemeParams",
    "Session",
    "SetReconciler",
    "StreamingReconciler",
    "SymbolBudgetExceeded",
    "UnsupportedOperation",
    "available_schemes",
    "get_scheme",
    "reconcile",
    "register_scheme",
    "scheme_info",
]
