"""Scheme adapters. Importing this package populates the registry."""

from repro.api.adapters import cpi, merkle, met_iblt, pinsketch, regular_iblt, riblt

__all__ = ["cpi", "merkle", "met_iblt", "pinsketch", "regular_iblt", "riblt"]
