"""Adapter: PinSketch (BCH syndromes) behind ``SetReconciler``.

Items embed into GF(2^m) as little-endian integers; ``m`` is the
smallest built-in field width (8/16/32/64 bits) that holds
``symbol_size`` bytes, so items may be at most 8 bytes and must not be
all-zero (0 is not a sketchable field element).  A subtracted sketch
decodes to the *unsigned* symmetric difference; attribution to A-only /
B-only uses the live receiver's own set, exactly as Minisketch
deployments do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.api.base import SchemeParams, SetReconciler
from repro.api.registry import Capabilities, register_scheme
from repro.baselines.pinsketch.gf2 import GF2m, IRREDUCIBLE_POLYS
from repro.baselines.pinsketch.sketch import DecodeFailure, PinSketch
from repro.core.decoder import DecodeResult


@dataclass(frozen=True)
class PinSketchParams(SchemeParams):
    """``capacity`` = t, the max reconcilable difference; exact on the wire."""

    capacity: Optional[int] = None
    field_bits: Optional[int] = None  # default: smallest field fitting ℓ


def _field_for(params: PinSketchParams) -> GF2m:
    assert params.symbol_size is not None
    if params.field_bits is not None:
        return GF2m(params.field_bits)
    needed = params.symbol_size * 8
    for bits in sorted(IRREDUCIBLE_POLYS):
        if bits >= needed:
            return GF2m(bits)
    raise ValueError(
        f"pinsketch supports items up to {max(IRREDUCIBLE_POLYS) // 8} bytes; "
        f"got symbol_size={params.symbol_size}"
    )


class PinSketchReconciler(SetReconciler):
    """A capacity-t BCH syndrome sketch of one set."""

    def __init__(
        self,
        params: PinSketchParams,
        sketch: PinSketch,
        item_ints: Optional[set[int]],
    ) -> None:
        self.params = params
        self._sketch = sketch
        self._item_ints = item_ints  # None for received/diff sketches
        self._local_ints: Optional[set[int]] = None  # diff mode: receiver's set

    # -- item embedding ----------------------------------------------------

    def _to_int(self, item: bytes) -> int:
        value = int.from_bytes(item, "little")
        if value == 0:
            raise ValueError("pinsketch cannot represent the all-zero item")
        return value

    def _to_bytes(self, value: int) -> bytes:
        assert self.params.symbol_size is not None
        return value.to_bytes(self.params.symbol_size, "little")

    # -- construction -----------------------------------------------------

    @classmethod
    def _empty_sketch(cls, params: PinSketchParams) -> PinSketch:
        if params.capacity is None:
            raise ValueError(
                "pinsketch is fixed-capacity: pass capacity or a difference_bound"
            )
        return PinSketch(_field_for(params), params.capacity)

    @classmethod
    def from_items(
        cls, items: Sequence[bytes], params: PinSketchParams
    ) -> "PinSketchReconciler":
        sketch = cls._empty_sketch(params)
        rec = cls(params, sketch, set())
        for item in items:
            rec.add(item)
        return rec

    @classmethod
    def deserialize(cls, blob: bytes, params: PinSketchParams) -> "PinSketchReconciler":
        empty = cls._empty_sketch(params)
        sketch = PinSketch.deserialize(blob, empty.field, empty.capacity)
        return cls(params, sketch, None)

    @classmethod
    def params_for_difference(
        cls, params: PinSketchParams, difference: int
    ) -> PinSketchParams:
        return replace(params, capacity=max(1, difference))

    # -- mutation (XOR toggle: add and remove are the same operation) ------

    def add(self, item: bytes) -> None:
        value = self._to_int(item)
        self._sketch.add(value)
        if self._item_ints is not None:
            self._item_ints.add(value)

    def remove(self, item: bytes) -> None:
        value = self._to_int(item)
        self._sketch.add(value)  # toggle
        if self._item_ints is not None:
            self._item_ints.discard(value)

    # -- wire -------------------------------------------------------------

    def serialize(self) -> bytes:
        return self._sketch.serialize()

    def wire_size(self) -> int:
        return self._sketch.wire_size()

    # -- reconciliation ---------------------------------------------------

    def subtract(self, other: "PinSketchReconciler") -> "PinSketchReconciler":
        diff = PinSketchReconciler(
            self.params, self._sketch.subtract(other._sketch), None
        )
        # Snapshot, not alias: the receiver may mutate after subtract().
        diff._local_ints = set(other._item_ints) if other._item_ints else set()
        return diff

    def decode(self) -> DecodeResult:
        try:
            elements = self._sketch.decode()
        except DecodeFailure:
            return DecodeResult(success=False, symbols_used=self._sketch.capacity)
        local_ints = self._local_ints or set()
        remote = [self._to_bytes(e) for e in elements if e not in local_ints]
        local = [self._to_bytes(e) for e in elements if e in local_ints]
        return DecodeResult(
            success=True,
            remote=remote,
            local=local,
            symbols_used=self._sketch.capacity,
        )


register_scheme(
    "pinsketch",
    summary="BCH-syndrome sketch (Minisketch's algorithm), overhead-1 (§2)",
    capabilities=Capabilities(fixed_capacity=True, incremental=True),
    param_class=PinSketchParams,
    reconciler_class=PinSketchReconciler,
)
