"""Adapter: Merkle-trie state heal behind ``SetReconciler``.

The production baseline is a *protocol*, not a sketch: Bob walks Alice's
trie top-down, fetching every node whose hash he lacks.  The adapter
maps the uniform calls onto that shape — ``serialize`` is unsupported
(only the 32-byte root is ever advertised), ``subtract`` pairs Alice's
trie with Bob's node store, and ``decode`` runs the heal and charges its
full request/response transcript via ``decode_wire_bytes``.  After the
heal Bob holds Alice's complete trie, so both difference directions are
computed locally, for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api.base import SchemeParams, SetReconciler, UnsupportedOperation
from repro.api.registry import Capabilities, register_scheme
from repro.baselines.merkle.heal import DEFAULT_BATCH_LIMIT, HealReport, state_heal
from repro.baselines.merkle.trie import HASH_SIZE, NodeStore, Trie
from repro.core.decoder import DecodeResult


@dataclass(frozen=True)
class MerkleParams(SchemeParams):
    """Geth-style snap sync limits."""

    batch_limit: int = DEFAULT_BATCH_LIMIT


class MerkleReconciler(SetReconciler):
    """A hexary trie of one set (items are keys; values are empty)."""

    def __init__(
        self,
        params: MerkleParams,
        store: NodeStore,
        trie: Trie,
        items: set[bytes],
    ) -> None:
        self.params = params
        self._store = store
        self._trie = trie
        self._items = items
        # diff mode
        self._peer: Optional["MerkleReconciler"] = None
        self._report: Optional[HealReport] = None

    @classmethod
    def from_items(
        cls, items: Sequence[bytes], params: MerkleParams
    ) -> "MerkleReconciler":
        store = NodeStore()
        trie = Trie.from_items(((item, b"") for item in items), store)
        return cls(params, store, trie, set(items))

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        if item not in self._items:
            self._trie = self._trie.update(item, b"")
            self._items.add(item)

    # (no remove: the persistent trie here has no deletion path)

    # -- wire -------------------------------------------------------------

    def serialize(self) -> bytes:
        raise UnsupportedOperation(
            "merkle state heal is interactive; only the root hash is advertised"
        )

    def wire_size(self) -> int:
        """The advertisement that starts a heal: one root hash."""
        return HASH_SIZE

    # -- reconciliation ---------------------------------------------------

    def subtract(self, other: "MerkleReconciler") -> "MerkleReconciler":
        diff = MerkleReconciler(self.params, self._store, self._trie, self._items)
        diff._peer = other
        return diff

    def decode(self) -> DecodeResult:
        assert self._peer is not None, "decode() applies to a subtracted pair"
        bob = self._peer
        healed_store = bob._trie.reachable_store()
        self._report = state_heal(
            healed_store, self._trie, batch_limit=self.params.batch_limit
        )
        # Bob now owns Alice's full trie; both directions fall out locally.
        remote = sorted(self._items - bob._items)
        local = sorted(bob._items - self._items)
        return DecodeResult(
            success=True,
            remote=remote,
            local=local,
            symbols_used=self._report.nodes_fetched,
        )

    @property
    def heal_report(self) -> Optional[HealReport]:
        """Transcript of the heal ``decode()`` ran (for the simulator)."""
        return self._report

    def decode_wire_bytes(self, result: DecodeResult) -> int:
        """Root advertisement plus the heal's full transcript."""
        assert self._report is not None
        return HASH_SIZE + self._report.total_bytes


register_scheme(
    "merkle",
    summary="Merkle-trie state heal, Ethereum's production protocol (§7.3)",
    capabilities=Capabilities(serializable=False),
    param_class=MerkleParams,
    reconciler_class=MerkleReconciler,
)
