"""Shared plumbing for the IBLT-family adapters.

*Parameters*: every scheme built on :class:`~repro.core.symbols.SymbolCodec`
shares the same three knobs, so :class:`CodecParams` holds them once and
:func:`codec_for` is the one place a codec is constructed.

*Wire format*: regular IBLT and MET-IBLT tables are flat lists of
:class:`~repro.core.coded.CodedSymbol` cells with a geometry both sides
already agree on, so the wire format is just the cells themselves:
ℓ-byte sum, ``checksum_size``-byte checksum, 8-byte signed count, all
little-endian.  (This is a faithful codec; the *accounting* size used in
benchmarks stays the paper's §7.1 ℓ+16 figure, see the adapters.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.base import ReconcileError, SchemeParams
from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.params import CHECKSUM_BYTES
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import DEFAULT_KEY, make_hasher

COUNT_BYTES = CodedSymbolBank.COUNT_BYTES


@dataclass(frozen=True)
class CodecParams(SchemeParams):
    """The knobs every ``SymbolCodec``-based scheme shares."""

    checksum_size: int = CHECKSUM_BYTES
    hasher: str = "blake2b"
    key: bytes = DEFAULT_KEY


def codec_for(params: CodecParams) -> SymbolCodec:
    assert params.symbol_size is not None
    return SymbolCodec(
        params.symbol_size,
        make_hasher(params.hasher, params.key),
        checksum_size=params.checksum_size,
    )


def cell_blob_size(codec: SymbolCodec, num_cells: int) -> int:
    """Serialised size of ``num_cells`` cells."""
    return num_cells * (codec.symbol_size + codec.checksum_size + COUNT_BYTES)


def pack_cells(codec: SymbolCodec, cells: list[CodedSymbol]) -> bytes:
    """Serialise cells in the flat layout (delegates to the bank codec)."""
    return CodedSymbolBank.from_cells(cells).pack(codec)


def unpack_cells(codec: SymbolCodec, blob: bytes) -> list[CodedSymbol]:
    """Parse a flat cell blob (delegates to the bank codec)."""
    return CodedSymbolBank.unpack(blob, codec).cells()


class CellStreamFace:
    """Streaming face over a table of coded cells, for table adapters.

    Mixed into :class:`~repro.api.base.StreamingReconciler` subclasses
    whose sketch is a flat cell list (regular IBLT, MET-IBLT): the
    sender streams the table's cells in index order; the receiver
    subtracts its own cell at the same index lane-wise and asks the
    adapter (``_try_stream_decode``) whether the diff prefix decodes —
    at the full table for a fixed-capacity scheme, at every preset
    block boundary for a rate-compatible one.

    Both hot-path overrides the base class warns about are provided:
    ``produce_block`` packs the whole cell slice in one pass instead of
    joining per-symbol ``produce_next`` results, and
    ``symbols_absorbed`` is a plain O(1) counter instead of
    materialising ``stream_result()`` per frame.

    Arbitrary payload fragmentation is fine: partial cells are buffered
    until a whole cell is available.  These streams are *finite* —
    producing past the table's last cell raises ``ReconcileError``
    (an undersized table cannot be extended; pick a bigger one).
    """

    # Class-level defaults double as lazy instance state: the first
    # mutation creates the instance attribute.
    _stream_produced = 0
    _stream_absorbed = 0
    _stream_decoded = False

    # -- adapter contract --------------------------------------------------

    def _stream_codec(self) -> SymbolCodec:
        raise NotImplementedError

    def _own_cells(self) -> list[CodedSymbol]:
        raise NotImplementedError

    def _try_stream_decode(
        self, diff_cells: list[CodedSymbol], absorbed: int
    ) -> Optional[DecodeResult]:
        """Attempt a decode of the ``absorbed``-cell diff prefix."""
        raise NotImplementedError

    # -- streaming face ----------------------------------------------------

    def produce_next(self) -> bytes:
        return self.produce_block(1)

    def produce_block(self, block_size: int) -> bytes:
        cells = self._own_cells()
        lo = self._stream_produced
        if lo >= len(cells):
            raise ReconcileError(
                f"{type(self).__name__}: cell stream exhausted after "
                f"{len(cells)} cells (fixed tables cannot be extended)"
            )
        hi = min(lo + block_size, len(cells))
        self._stream_produced = hi
        return pack_cells(self._stream_codec(), cells[lo:hi])

    def absorb(self, payload: bytes) -> bool:
        if self._stream_decoded:
            return True
        buf = self.__dict__.setdefault("_stream_buf", bytearray())
        diff = self.__dict__.setdefault("_stream_diff", [])
        buf.extend(payload)
        codec = self._stream_codec()
        stride = codec.symbol_size + codec.checksum_size + COUNT_BYTES
        usable = len(buf) - len(buf) % stride
        if not usable:
            return False
        incoming = unpack_cells(codec, bytes(buf[:usable]))
        del buf[:usable]
        own = self._own_cells()
        base = self._stream_absorbed
        if base + len(incoming) > len(own):
            raise ReconcileError(
                f"{type(self).__name__}: peer streamed more cells than the "
                f"table holds ({len(own)})"
            )
        for offset, cell in enumerate(incoming):
            diff.append(cell.subtract(own[base + offset]))
        self._stream_absorbed = base + len(incoming)
        result = self._try_stream_decode(diff, self._stream_absorbed)
        if result is not None and result.success:
            self._stream_decoded = True
            self._stream_result = result
        return self._stream_decoded

    @property
    def symbols_absorbed(self) -> int:
        return self._stream_absorbed

    @property
    def decoded(self) -> bool:
        return self._stream_decoded

    def stream_result(self) -> DecodeResult:
        result = self.__dict__.get("_stream_result")
        if result is not None:
            return result
        return DecodeResult(success=False)
