"""Shared plumbing for the IBLT-family adapters.

*Parameters*: every scheme built on :class:`~repro.core.symbols.SymbolCodec`
shares the same three knobs, so :class:`CodecParams` holds them once and
:func:`codec_for` is the one place a codec is constructed.

*Wire format*: regular IBLT and MET-IBLT tables are flat lists of
:class:`~repro.core.coded.CodedSymbol` cells with a geometry both sides
already agree on, so the wire format is just the cells themselves:
ℓ-byte sum, ``checksum_size``-byte checksum, 8-byte signed count, all
little-endian.  (This is a faithful codec; the *accounting* size used in
benchmarks stays the paper's §7.1 ℓ+16 figure, see the adapters.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.base import SchemeParams
from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.params import CHECKSUM_BYTES
from repro.core.symbols import SymbolCodec
from repro.hashing.keyed import DEFAULT_KEY, make_hasher

COUNT_BYTES = CodedSymbolBank.COUNT_BYTES


@dataclass(frozen=True)
class CodecParams(SchemeParams):
    """The knobs every ``SymbolCodec``-based scheme shares."""

    checksum_size: int = CHECKSUM_BYTES
    hasher: str = "blake2b"
    key: bytes = DEFAULT_KEY


def codec_for(params: CodecParams) -> SymbolCodec:
    assert params.symbol_size is not None
    return SymbolCodec(
        params.symbol_size,
        make_hasher(params.hasher, params.key),
        checksum_size=params.checksum_size,
    )


def cell_blob_size(codec: SymbolCodec, num_cells: int) -> int:
    """Serialised size of ``num_cells`` cells."""
    return num_cells * (codec.symbol_size + codec.checksum_size + COUNT_BYTES)


def pack_cells(codec: SymbolCodec, cells: list[CodedSymbol]) -> bytes:
    """Serialise cells in the flat layout (delegates to the bank codec)."""
    return CodedSymbolBank.from_cells(cells).pack(codec)


def unpack_cells(codec: SymbolCodec, blob: bytes) -> list[CodedSymbol]:
    """Parse a flat cell blob (delegates to the bank codec)."""
    return CodedSymbolBank.unpack(blob, codec).cells()
