"""Adapter: Characteristic Polynomial Interpolation behind ``SetReconciler``.

Items embed directly as field elements of GF(2^61 − 1), so
``symbol_size`` may be at most 7 bytes (56 bits keeps every item clear
of the reserved sample points).  The sketch is χ_A evaluated at agreed
points; "subtraction" is the receiver dividing by his own χ_B, which is
why ``subtract`` requires the live local side.

Incremental mutation is cheap and exact: appending item x multiplies
every evaluation by (z_i − x); removing divides — O(points) per update.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.api.base import SchemeParams, SetReconciler, UnsupportedOperation
from repro.api.registry import Capabilities, register_scheme
from repro.baselines.cpi import (
    CPIDecodeFailure,
    CPISketch,
    MAX_ITEM,
    PRIME,
    _inv,
    sample_point,
)
from repro.core import varint
from repro.core.decoder import DecodeResult

EVAL_BYTES = 8


@dataclass(frozen=True)
class CpiParams(SchemeParams):
    """``num_points`` = m evaluations; d+2 reconciles a d-item difference."""

    num_points: Optional[int] = None


def _check_symbol_size(params: CpiParams) -> int:
    assert params.symbol_size is not None
    if params.symbol_size * 8 > 56:
        raise ValueError(
            "cpi items embed into GF(2^61-1): symbol_size must be <= 7 bytes"
        )
    return params.symbol_size


class CpiReconciler(SetReconciler):
    """χ_A evaluations of one set at the agreed sample points."""

    def __init__(
        self,
        params: CpiParams,
        sketch: CPISketch,
        item_ints: Optional[list[int]],
    ) -> None:
        self.params = params
        self._sketch = sketch
        self._item_ints = item_ints  # None for received sketches
        self._local_ints: Optional[list[int]] = None  # diff mode

    def _to_bytes(self, value: int) -> bytes:
        assert self.params.symbol_size is not None
        return value.to_bytes(self.params.symbol_size, "little")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_items(cls, items: Sequence[bytes], params: CpiParams) -> "CpiReconciler":
        _check_symbol_size(params)
        if params.num_points is None:
            raise ValueError(
                "cpi is fixed-capacity: pass num_points or a difference_bound"
            )
        ints = [int.from_bytes(item, "little") for item in items]
        for value in ints:
            if value >= MAX_ITEM:
                raise ValueError(f"cpi items must be below {MAX_ITEM:#x}")
        sketch = CPISketch.from_items(ints, params.num_points)
        return cls(params, sketch, ints)

    @classmethod
    def deserialize(cls, blob: bytes, params: CpiParams) -> "CpiReconciler":
        _check_symbol_size(params)
        set_size, pos = varint.decode_uvarint(blob, 0)
        if (len(blob) - pos) % EVAL_BYTES:
            raise ValueError("cpi sketch blob has a partial evaluation")
        evals = [
            int.from_bytes(blob[i : i + EVAL_BYTES], "little")
            for i in range(pos, len(blob), EVAL_BYTES)
        ]
        return cls(params, CPISketch(set_size, evals), None)

    @classmethod
    def params_for_difference(cls, params: CpiParams, difference: int) -> CpiParams:
        return replace(params, num_points=max(2, difference + 2))

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        if self._item_ints is None:
            raise UnsupportedOperation("received CPI sketches are frozen")
        value = int.from_bytes(item, "little")
        evals = self._sketch.evaluations
        for i, acc in enumerate(evals):
            evals[i] = acc * (sample_point(i) - value) % PRIME
        self._sketch.set_size += 1
        self._item_ints.append(value)

    def remove(self, item: bytes) -> None:
        if self._item_ints is None:
            raise UnsupportedOperation("received CPI sketches are frozen")
        value = int.from_bytes(item, "little")
        evals = self._sketch.evaluations
        for i, acc in enumerate(evals):
            evals[i] = acc * _inv(sample_point(i) - value) % PRIME
        self._sketch.set_size -= 1
        self._item_ints.remove(value)

    # -- wire -------------------------------------------------------------

    def serialize(self) -> bytes:
        parts = [varint.encode_uvarint(self._sketch.set_size)]
        parts.extend(
            e.to_bytes(EVAL_BYTES, "little") for e in self._sketch.evaluations
        )
        return b"".join(parts)

    def wire_size(self) -> int:
        return self._sketch.wire_size()

    # -- reconciliation ---------------------------------------------------

    def subtract(self, other: "CpiReconciler") -> "CpiReconciler":
        if other._item_ints is None:
            raise UnsupportedOperation(
                "cpi decoding divides by the receiver's own characteristic "
                "polynomial; the local side must be a live set"
            )
        diff = CpiReconciler(self.params, self._sketch, None)
        diff._local_ints = list(other._item_ints)
        return diff

    def decode(self) -> DecodeResult:
        assert self._local_ints is not None, "decode() applies to a subtracted sketch"
        points = len(self._sketch.evaluations)
        try:
            only_a, only_b = self._sketch.decode_against(self._local_ints)
        except CPIDecodeFailure:
            return DecodeResult(success=False, symbols_used=points)
        return DecodeResult(
            success=True,
            remote=[self._to_bytes(v) for v in only_a],
            local=[self._to_bytes(v) for v in only_b],
            symbols_used=points,
        )


register_scheme(
    "cpi",
    summary="Characteristic polynomial interpolation, overhead-1 but O(d^3) (§2)",
    capabilities=Capabilities(fixed_capacity=True, incremental=True),
    param_class=CpiParams,
    reconciler_class=CpiReconciler,
)
