"""Adapter: MET-IBLT (rate-compatible multi-edge-type IBLT) [Lázaro & Matuz].

MET is neither streaming (its extension points are coarse preset block
boundaries) nor fixed-capacity (no estimator needed): the receiver
decodes the smallest block prefix that succeeds, and only that prefix is
charged to the wire — ``decode_wire_bytes`` reports the consumed cells,
reproducing the Fig 7 "competitive at preset sizes, 4-10x between them"
behaviour through the uniform interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api.adapters.cellpack import (
    CellStreamFace,
    CodecParams,
    codec_for,
    pack_cells,
    unpack_cells,
)
from repro.api.base import StreamingReconciler
from repro.api.registry import Capabilities, register_scheme
from repro.baselines.met_iblt import (
    CELL_OVERHEAD_BYTES,
    DEFAULT_MET_CONFIG,
    MetConfig,
    MetIBLT,
)
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.symbols import SymbolCodec


@dataclass(frozen=True)
class MetIbltParams(CodecParams):
    """MET geometry; the default config targets d ∈ {10, 50, ..., 6250}."""

    config: MetConfig = DEFAULT_MET_CONFIG


class MetIbltReconciler(CellStreamFace, StreamingReconciler):
    """One MET-IBLT of one set, decoded at the cheapest block prefix.

    The :class:`CellStreamFace` streaming face ships cells in index
    order and attempts a decode at every preset block boundary — the
    rate-compatible prefix growth of Lázaro & Matuz as an actual
    stream, usable by the protocol engine.  The registry capability
    stays ``streaming=False``: extension points are the coarse preset
    boundaries and the stream is finite, not rateless.
    """

    def __init__(self, params: MetIbltParams, table: MetIBLT) -> None:
        self.params = params
        self._table = table
        self._consumed_cells: Optional[int] = None
        self._stream_levels_tried = 0

    @classmethod
    def from_items(
        cls, items: Sequence[bytes], params: MetIbltParams
    ) -> "MetIbltReconciler":
        table = MetIBLT.from_items(items, codec_for(params), params.config)
        return cls(params, table)

    @classmethod
    def deserialize(cls, blob: bytes, params: MetIbltParams) -> "MetIbltReconciler":
        table = MetIBLT(codec_for(params), params.config)
        cells = unpack_cells(table.codec, blob)
        if len(cells) != table.num_cells:
            raise ValueError(f"expected {table.num_cells} cells, got {len(cells)}")
        table.cells = cells
        return cls(params, table)

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        self._table.insert(item)

    def remove(self, item: bytes) -> None:
        self._table.delete(item)

    # -- wire -------------------------------------------------------------

    def serialize(self) -> bytes:
        return pack_cells(self._table.codec, self._table.cells)

    def wire_size(self) -> int:
        return self._table.wire_size()

    # -- reconciliation ---------------------------------------------------

    def subtract(self, other: "MetIbltReconciler") -> "MetIbltReconciler":
        return MetIbltReconciler(self.params, self._table.subtract(other._table))

    def decode(self) -> DecodeResult:
        result, cells = self._table.decode_smallest_prefix()
        self._consumed_cells = cells
        return result

    def decode_wire_bytes(self, result: DecodeResult) -> int:
        """Only the block prefix actually shipped (rate compatibility)."""
        cells = self._consumed_cells
        if cells is None:
            return self.wire_size()
        return cells * (self._table.codec.symbol_size + CELL_OVERHEAD_BYTES)

    # -- streaming face (CellStreamFace contract) --------------------------

    def _stream_codec(self) -> SymbolCodec:
        return self._table.codec

    def _own_cells(self) -> list[CodedSymbol]:
        return self._table.cells

    def _try_stream_decode(
        self, diff_cells: list[CodedSymbol], absorbed: int
    ) -> Optional[DecodeResult]:
        config = self._table.config
        result: Optional[DecodeResult] = None
        for level in range(self._stream_levels_tried + 1, config.levels + 1):
            limit = config.cumulative_cells(level)
            if limit > absorbed:
                break
            self._stream_levels_tried = level
            table = MetIBLT(self._table.codec, config)
            table.cells[:absorbed] = [cell.copy() for cell in diff_cells]
            result = table.decode(level)
            if result.success:
                self._consumed_cells = limit
                return result
        return result


register_scheme(
    "met_iblt",
    summary="Rate-compatible MET-IBLT, extended in preset block jumps (§2)",
    capabilities=Capabilities(incremental=True),
    param_class=MetIbltParams,
    reconciler_class=MetIbltReconciler,
)
