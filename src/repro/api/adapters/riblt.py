"""Adapter: the paper's Rateless IBLT (repro.core) behind ``SetReconciler``.

The streaming face (``produce_next``/``absorb``) wraps the incremental
encoder/decoder pair with §6 wire framing, so byte accounting matches
what :class:`repro.core.session.ReconciliationSession` reports.  The
sketch face (``serialize``/``subtract``/``decode``) freezes a coded-
symbol prefix — either explicitly sized via ``prefix_symbols`` /
``Scheme.sized_for`` or the conservative default — which is how a
rateless stream is used in datagram settings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.api.adapters.cellpack import CodecParams, codec_for
from repro.api.base import StreamingReconciler, UnsupportedOperation
from repro.api.registry import Capabilities, register_scheme
from repro.core.cellbank import CodedSymbolBank
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult, RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import (
    SymbolStreamReader,
    SymbolStreamWriter,
    decode_stream,
    encode_stream,
)

# Sketch-mode prefix when nobody sized the sketch: enough for ~20
# differences at the paper's 1.35-1.72 overhead, with tail margin.
DEFAULT_PREFIX_SYMBOLS = 64


@dataclass(frozen=True)
class RibltParams(CodecParams):
    """Knobs of the rateless codec (see ``repro.core``)."""

    prefix_symbols: Optional[int] = None  # sketch-mode prefix length


class RibltReconciler(StreamingReconciler):
    """Rateless IBLT over one set: stream it, or freeze a prefix sketch."""

    accepts_item_hashes = True

    def __init__(self, params: RibltParams, codec: SymbolCodec) -> None:
        self.params = params
        self.codec = codec
        self._encoder: Optional[RatelessEncoder] = None  # live mode
        self._cells: Optional[list[CodedSymbol]] = None  # received/diff mode
        self._set_size = 0
        # streaming state, created lazily.  Sending and receiving index
        # the *same* cached universal stream independently, so one
        # reconciler can do both at once (full-duplex peer-to-peer).
        self._writer: Optional[SymbolStreamWriter] = None
        self._reader: Optional[SymbolStreamReader] = None
        self._decoder: Optional[RatelessDecoder] = None
        self._absorbed = 0
        self._wire_index = 0
        # diff mode: Alice's original cells, for consumed-prefix accounting
        self._source_cells: Optional[list[CodedSymbol]] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_items(
        cls,
        items: Sequence[bytes],
        params: RibltParams,
        *,
        item_hashes: Optional[Sequence[int]] = None,
    ) -> "RibltReconciler":
        codec = codec_for(params)
        rec = cls(params, codec)
        rec._encoder = RatelessEncoder(codec, items, item_hashes=item_hashes)
        rec._set_size = rec._encoder.set_size
        return rec

    @classmethod
    def deserialize(cls, blob: bytes, params: RibltParams) -> "RibltReconciler":
        codec = codec_for(params)
        cells, set_size = decode_stream(codec, blob)
        rec = cls(params, codec)
        rec._cells = cells
        rec._set_size = set_size
        return rec

    @classmethod
    def params_for_difference(cls, params: RibltParams, difference: int) -> RibltParams:
        # Paper overhead tops out well under 2.2x for any d; the +16
        # constant covers the heavy small-d tail (Fig 6).
        prefix = max(8, (difference * 11 + 4) // 5 + 16)
        return replace(params, prefix_symbols=prefix)

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        self._require_live().add_item(item)
        self._set_size += 1

    def remove(self, item: bytes) -> None:
        self._require_live().remove_item(item)
        self._set_size -= 1

    def _require_live(self) -> RatelessEncoder:
        if self._encoder is None:
            raise UnsupportedOperation(
                "this RibltReconciler wraps a received sketch, not a live set"
            )
        return self._encoder

    # -- streaming face ----------------------------------------------------

    def produce_next(self) -> bytes:
        """The next §6-framed coded symbol (header precedes the first)."""
        return self.produce_block(1)

    def produce_block(self, block_size: int) -> bytes:
        """The next ``block_size`` §6-framed coded symbols in one payload.

        Byte-identical to ``block_size`` :meth:`produce_next` calls —
        the framing is per cell — but produced through the bank-backed
        batch path.
        """
        encoder = self._require_live()
        if self._writer is None:
            self._writer = SymbolStreamWriter(self.codec, set_size=encoder.set_size)
            head = self._writer.header()
        else:
            head = b""
        lo = self._wire_index
        self._wire_index += block_size
        block = encoder.cached_block(lo, lo + block_size)
        return head + self._writer.write_block(block)

    def absorb(self, payload: bytes) -> bool:
        """Subtract our matching cells from the peer's stream and peel."""
        encoder = self._require_live()
        if self._reader is None:
            self._reader = SymbolStreamReader(self.codec)
            self._decoder = RatelessDecoder(self.codec)
        assert self._decoder is not None
        incoming = CodedSymbolBank()
        parsed = self._reader.feed_into(incoming, payload)
        if parsed:
            lo = self._absorbed
            self._absorbed += parsed
            incoming.subtract_in_place(encoder.cached_block(lo, lo + parsed))
            self._decoder.add_coded_block(incoming)
        return self._decoder.decoded

    @property
    def symbols_absorbed(self) -> int:
        return self._absorbed

    @property
    def decoded(self) -> bool:
        return self._decoder is not None and self._decoder.decoded

    def stream_result(self) -> DecodeResult:
        if self._decoder is None:
            return DecodeResult(success=False)
        return self._decoder.result()

    # -- sketch face -------------------------------------------------------

    def _sketch_cells(self, length: Optional[int] = None) -> list[CodedSymbol]:
        if self._cells is not None:
            if length is not None and length > len(self._cells):
                raise ValueError(
                    f"received sketch has {len(self._cells)} cells, need {length}"
                )
            return self._cells if length is None else self._cells[:length]
        encoder = self._require_live()
        if length is None:
            length = self.params.prefix_symbols or DEFAULT_PREFIX_SYMBOLS
        return encoder.prefix(length)

    def serialize(self) -> bytes:
        cells = self._sketch_cells()
        return encode_stream(self.codec, self._set_size, cells)

    def wire_size(self) -> int:
        return len(self.serialize())

    def subtract(self, other: "RibltReconciler") -> "RibltReconciler":
        mine = self._sketch_cells()
        theirs = other._sketch_cells(len(mine))
        diff = RibltReconciler(self.params, self.codec)
        diff._cells = [a.subtract(b) for a, b in zip(mine, theirs)]
        diff._set_size = self._set_size
        diff._source_cells = [cell.copy() for cell in mine]
        return diff

    def decode(self) -> DecodeResult:
        assert self._cells is not None, "decode() applies to a subtracted sketch"
        decoder = RatelessDecoder(self.codec)
        # chunk=1 keeps the consumed-prefix accounting cell-exact.
        decoder.add_coded_block(
            CodedSymbolBank.from_cells(self._cells), stop_when_decoded=True, chunk=1
        )
        return decoder.result()

    def decode_wire_bytes(self, result: DecodeResult) -> int:
        """Bytes of the consumed coded-symbol prefix (§6 framing)."""
        if self._source_cells is None:
            return self.wire_size()
        used = result.symbols_used or len(self._source_cells)
        return len(
            encode_stream(self.codec, self._set_size, self._source_cells[:used])
        )


register_scheme(
    "riblt",
    summary="Rateless IBLT coded-symbol stream (this paper, §4-§6)",
    capabilities=Capabilities(streaming=True, incremental=True),
    param_class=RibltParams,
    reconciler_class=RibltReconciler,
)
