"""Adapters: regular (fixed-size) IBLT, bare and strata-composed.

Two registry entries share the :class:`RegularIbltReconciler` class:

``regular_iblt``
    The bare fixed-capacity table.  Callers must size it — pass
    ``num_cells`` or a ``difference_bound`` to the generic driver.
``regular_iblt+strata``
    The deployable composition Fig 7 labels "Regular IBLT + Estimator":
    a ~15 KB strata-estimator exchange sizes the table, and the generic
    driver charges that surcharge to the wire total.  Capability flag
    ``needs_estimator`` is what triggers the composition — the adapter
    itself stays estimator-free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.api.adapters.cellpack import (
    CellStreamFace,
    CodecParams,
    codec_for,
    pack_cells,
    unpack_cells,
)
from repro.api.base import StreamingReconciler
from repro.api.registry import Capabilities, register_scheme
from repro.baselines.regular_iblt import RegularIBLT, recommended_cells
from repro.core.coded import CodedSymbol
from repro.core.decoder import DecodeResult
from repro.core.symbols import SymbolCodec


@dataclass(frozen=True)
class RegularIbltParams(CodecParams):
    """Geometry of the fixed table (``num_cells`` may come from sizing)."""

    num_cells: Optional[int] = None
    hash_count: int = 3


class RegularIbltReconciler(CellStreamFace, StreamingReconciler):
    """One fixed-geometry IBLT of one set.

    Also exposes the :class:`CellStreamFace` streaming face (cells
    streamed in index order, decode attempted once the full table
    arrived) so the protocol engine can move a fixed table as a stream;
    the registry capability stays ``streaming=False`` because a prefix
    of a fixed table is *not* decodable — the face is finite, not
    rateless.
    """

    def __init__(self, params: RegularIbltParams, table: RegularIBLT) -> None:
        self.params = params
        self._table = table

    @classmethod
    def _sized_table(cls, params: RegularIbltParams) -> RegularIBLT:
        if params.num_cells is None:
            raise ValueError(
                "regular_iblt is fixed-capacity: pass num_cells, or a "
                "difference_bound / the regular_iblt+strata scheme to have "
                "it sized for you"
            )
        return RegularIBLT(params.num_cells, codec_for(params), params.hash_count)

    @classmethod
    def from_items(
        cls, items: Sequence[bytes], params: RegularIbltParams
    ) -> "RegularIbltReconciler":
        table = cls._sized_table(params)
        for item in items:
            table.insert(item)
        return cls(params, table)

    @classmethod
    def deserialize(
        cls, blob: bytes, params: RegularIbltParams
    ) -> "RegularIbltReconciler":
        table = cls._sized_table(params)
        cells = unpack_cells(table.codec, blob)
        if len(cells) != table.num_cells:
            raise ValueError(
                f"expected {table.num_cells} cells, got {len(cells)}"
            )
        table.cells = cells
        return cls(params, table)

    @classmethod
    def params_for_difference(
        cls, params: RegularIbltParams, difference: int
    ) -> RegularIbltParams:
        cells = recommended_cells(max(1, difference), params.hash_count)
        return replace(params, num_cells=cells)

    # -- mutation ---------------------------------------------------------

    def add(self, item: bytes) -> None:
        self._table.insert(item)

    def remove(self, item: bytes) -> None:
        self._table.delete(item)

    # -- wire -------------------------------------------------------------

    def serialize(self) -> bytes:
        return pack_cells(self._table.codec, self._table.cells)

    def wire_size(self) -> int:
        """§7.1 accounting: ℓ + 8 B checksum + 8 B count per cell."""
        return self._table.wire_size()

    # -- reconciliation ---------------------------------------------------

    def subtract(self, other: "RegularIbltReconciler") -> "RegularIbltReconciler":
        return RegularIbltReconciler(self.params, self._table.subtract(other._table))

    def decode(self) -> DecodeResult:
        return self._table.decode()

    # -- streaming face (CellStreamFace contract) --------------------------

    def _stream_codec(self) -> SymbolCodec:
        return self._table.codec

    def _own_cells(self) -> list[CodedSymbol]:
        return self._table.cells

    def _try_stream_decode(
        self, diff_cells: list[CodedSymbol], absorbed: int
    ) -> Optional[DecodeResult]:
        if absorbed < self._table.num_cells:
            return None  # a fixed table only decodes once complete
        table = RegularIBLT(
            self._table.num_cells, self._table.codec, self._table.hash_count
        )
        table.cells = [cell.copy() for cell in diff_cells]
        return table.decode()


register_scheme(
    "regular_iblt",
    summary="Fixed-size IBLT, provisioned for a known difference (§3)",
    capabilities=Capabilities(fixed_capacity=True, incremental=True),
    param_class=RegularIbltParams,
    reconciler_class=RegularIbltReconciler,
)


class EstimatedRegularIbltReconciler(RegularIbltReconciler):
    """Same table; distinct class so the registry can stamp its name."""


register_scheme(
    "regular_iblt+strata",
    summary="Regular IBLT sized by a strata-estimator exchange (Fig 7)",
    capabilities=Capabilities(
        fixed_capacity=True, needs_estimator=True, incremental=True
    ),
    param_class=RegularIbltParams,
    reconciler_class=EstimatedRegularIbltReconciler,
)
