"""Hashing substrate: keyed 64-bit hashes and deterministic PRNG streams.

The paper (§4.3) keys the per-symbol checksum with SipHash so that an
adversary who can inject set items cannot aim hash collisions at a victim.
This sub-package provides:

* :func:`repro.hashing.siphash.siphash24` — a faithful pure-Python
  SipHash-2-4, validated against the reference test vectors;
* :class:`repro.hashing.keyed.Blake2bHasher` — a keyed 64-bit PRF backed by
  ``hashlib.blake2b`` (C speed, used as the default checksum hash);
* :class:`repro.hashing.prng.Splitmix64` — the deterministic stream that
  drives the coded-symbol index mapping.
"""

from repro.hashing.keyed import Blake2bHasher, KeyedHasher, SipHasher, make_hasher
from repro.hashing.prng import Splitmix64, mix64
from repro.hashing.siphash import siphash24

__all__ = [
    "Blake2bHasher",
    "KeyedHasher",
    "SipHasher",
    "Splitmix64",
    "make_hasher",
    "mix64",
    "siphash24",
]
