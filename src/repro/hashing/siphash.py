"""Pure-Python SipHash-2-4 (Aumasson & Bernstein, INDOCRYPT 2012).

The paper's implementation (§4.3) uses SipHash as the keyed checksum hash so
that malicious workloads cannot target collisions at a victim whose key they
do not know.  This module is a from-scratch implementation of the 64-bit
variant, bit-compatible with the reference ``siphash24`` C code.

Two entry points:

* :func:`siphash24` — one message at a time, any length.
* :func:`siphash24_batch` — many fixed-width messages at once.  SipRounds
  are pure 64-bit add/rotate/xor, so the whole batch advances in
  lock-step as uint64 lane arithmetic under NumPy (the set-ingestion
  pipeline hashes every item of a batch this way); without NumPy (or
  under ``REPRO_NO_NUMPY=1``) it falls back to a :func:`siphash24` loop.
  Both engines are bit-identical, which the reference-vector tests
  assert entry by entry.
"""

from __future__ import annotations

import os
from typing import Sequence

try:  # pragma: no cover - exercised implicitly by the engine dispatch tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# Flip to False (or set REPRO_NO_NUMPY=1) to force the scalar engine; the
# same kill switch the cellbank samplers honour.
NUMPY_LANE = _np is not None and os.environ.get("REPRO_NO_NUMPY", "") != "1"

# Below this batch size the NumPy call overhead outweighs the lane win.
NUMPY_MIN_BATCH = 8

# Integer-form batches have a much faster scalar engine (inline-unrolled
# rounds, no bytes round-trip), so their lane crossover sits higher.
NUMPY_INT_MIN_BATCH = 16

_MASK = 0xFFFFFFFFFFFFFFFF

# Initialisation constants: ASCII "somepseudorandomlygeneratedbytes".
_IV0 = 0x736F6D6570736575
_IV1 = 0x646F72616E646F6D
_IV2 = 0x6C7967656E657261
_IV3 = 0x7465646279746573


def _rotl(x: int, b: int) -> int:
    """Rotate the 64-bit integer ``x`` left by ``b`` bits."""
    return ((x << b) | (x >> (64 - b))) & _MASK


def siphash24(key: bytes, data: bytes) -> int:
    """Return the SipHash-2-4 of ``data`` under the 16-byte ``key``.

    The result is an unsigned 64-bit integer.  Raises ``ValueError`` when the
    key is not exactly 16 bytes, matching the reference implementation's
    contract.
    """
    if len(key) != 16:
        raise ValueError(f"SipHash key must be 16 bytes, got {len(key)}")

    k0 = int.from_bytes(key[:8], "little")
    k1 = int.from_bytes(key[8:], "little")
    v0 = k0 ^ _IV0
    v1 = k1 ^ _IV1
    v2 = k0 ^ _IV2
    v3 = k1 ^ _IV3

    def sipround() -> None:
        nonlocal v0, v1, v2, v3
        v0 = (v0 + v1) & _MASK
        v1 = _rotl(v1, 13) ^ v0
        v0 = _rotl(v0, 32)
        v2 = (v2 + v3) & _MASK
        v3 = _rotl(v3, 16) ^ v2
        v0 = (v0 + v3) & _MASK
        v3 = _rotl(v3, 21) ^ v0
        v2 = (v2 + v1) & _MASK
        v1 = _rotl(v1, 17) ^ v2
        v2 = _rotl(v2, 32)

    n_blocks, tail_len = divmod(len(data), 8)
    for i in range(n_blocks):
        m = int.from_bytes(data[8 * i : 8 * i + 8], "little")
        v3 ^= m
        sipround()
        sipround()
        v0 ^= m

    # Final block: remaining bytes, zero padded, with the low byte of the
    # total length in the most significant byte.
    tail = data[8 * n_blocks :]
    m = (len(data) & 0xFF) << 56 | int.from_bytes(
        tail + bytes(7 - tail_len), "little"
    )
    v3 ^= m
    sipround()
    sipround()
    v0 ^= m

    v2 ^= 0xFF
    sipround()
    sipround()
    sipround()
    sipround()
    return v0 ^ v1 ^ v2 ^ v3


def siphash24_batch(key: bytes, items: Sequence[bytes]) -> list[int]:
    """SipHash-2-4 of many equal-length messages under one 16-byte key.

    Returns one unsigned 64-bit integer per message, in order —
    element-for-element identical to calling :func:`siphash24` on each.
    All messages must share one length (the pipeline ingests fixed-width
    items); a ragged batch raises ``ValueError`` on either engine.
    """
    if len(key) != 16:
        raise ValueError(f"SipHash key must be 16 bytes, got {len(key)}")
    n = len(items)
    if n == 0:
        return []
    size = len(items[0])
    # set(map(len, ...)) runs the length sweep at C speed; a genexpr here
    # costs nearly as much as the hashing itself on large batches.
    if set(map(len, items)) != {size}:
        raise ValueError("siphash24_batch requires equal-length messages")
    if not NUMPY_LANE or _np is None or n < NUMPY_MIN_BATCH:
        return [siphash24(key, item) for item in items]
    return _siphash24_lanes(key, items, size)


def _siphash24_words_scalar(k0: int, k1: int, words: Sequence[int]) -> int:
    """Scalar SipHash-2-4 over pre-built 8-byte message words.

    The compression and finalisation rounds are written out inline —
    no helper calls, no nonlocal cells — because this is the per-hash
    engine of small peel-round batches, where call overhead roughly
    doubles the cost of the arithmetic.  Bit-identical to
    :func:`siphash24` on the equivalent byte message.
    """
    v0 = k0 ^ _IV0
    v1 = k1 ^ _IV1
    v2 = k0 ^ _IV2
    v3 = k1 ^ _IV3
    for m in words:
        v3 ^= m
        for _ in range(2):
            v0 = (v0 + v1) & _MASK
            v1 = ((v1 << 13) | (v1 >> 51)) & _MASK ^ v0
            v0 = ((v0 << 32) | (v0 >> 32)) & _MASK
            v2 = (v2 + v3) & _MASK
            v3 = ((v3 << 16) | (v3 >> 48)) & _MASK ^ v2
            v0 = (v0 + v3) & _MASK
            v3 = ((v3 << 21) | (v3 >> 43)) & _MASK ^ v0
            v2 = (v2 + v1) & _MASK
            v1 = ((v1 << 17) | (v1 >> 47)) & _MASK ^ v2
            v2 = ((v2 << 32) | (v2 >> 32)) & _MASK
        v0 ^= m
    v2 ^= 0xFF
    for _ in range(4):
        v0 = (v0 + v1) & _MASK
        v1 = ((v1 << 13) | (v1 >> 51)) & _MASK ^ v0
        v0 = ((v0 << 32) | (v0 >> 32)) & _MASK
        v2 = (v2 + v3) & _MASK
        v3 = ((v3 << 16) | (v3 >> 48)) & _MASK ^ v2
        v0 = (v0 + v3) & _MASK
        v3 = ((v3 << 21) | (v3 >> 43)) & _MASK ^ v0
        v2 = (v2 + v1) & _MASK
        v1 = ((v1 << 17) | (v1 >> 47)) & _MASK ^ v2
        v2 = ((v2 << 32) | (v2 >> 32)) & _MASK
    return v0 ^ v1 ^ v2 ^ v3


def siphash24_int_batch(key: bytes, values: Sequence[int], size: int) -> list[int]:
    """SipHash-2-4 of many ``size``-byte integer-form messages at once.

    Element-for-element identical to hashing ``v.to_bytes(size,
    "little")`` per value, for sizes 1..8.  The decoder's peel-round
    verification holds candidate symbols as integers, and a message of
    at most 8 bytes is a *single* SipHash block — tail bytes zero-padded
    with the length in the top byte — so the padded words are computed
    straight from the values, skipping the bytes round-trip entirely:
    ``v | size << 56`` for sizes below 8, ``[v, 8 << 56]`` at exactly 8.
    """
    if len(key) != 16:
        raise ValueError(f"SipHash key must be 16 bytes, got {len(key)}")
    if not 1 <= size <= 8:
        raise ValueError(f"size must be 1..8 bytes, got {size}")
    n = len(values)
    if n == 0:
        return []
    # Same contract as int.to_bytes: reject values outside [0, 2^(8·size)).
    if min(values) < 0 or max(values) >> (8 * size):
        raise OverflowError(f"value does not fit in {size} bytes")
    if not NUMPY_LANE or _np is None or n < NUMPY_INT_MIN_BATCH:
        k0 = int.from_bytes(key[:8], "little")
        k1 = int.from_bytes(key[8:], "little")
        if size == 8:
            tail = 8 << 56
            return [
                _siphash24_words_scalar(k0, k1, (v, tail)) for v in values
            ]
        tag = size << 56
        return [_siphash24_words_scalar(k0, k1, (v | tag,)) for v in values]
    np = _np
    lanes = np.array(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        if size == 8:
            words = [lanes, np.uint64(8 << 56)]
        else:
            words = [lanes | np.uint64(size << 56)]
        return _siphash24_word_lanes(key, words, n)


def _siphash24_lanes(key: bytes, items: Sequence[bytes], size: int) -> list[int]:
    """NumPy engine: the v0..v3 state of every message as uint64 lanes."""
    np = _np
    n = len(items)
    # One word per full 8-byte block plus the final block (tail bytes,
    # zero padded, length byte in the MSB — same rule as the scalar path).
    n_words = size // 8 + 1
    padded = np.zeros((n, n_words * 8), dtype=np.uint8)
    if size:
        padded[:, :size] = np.frombuffer(b"".join(items), dtype=np.uint8).reshape(
            n, size
        )
    # '<u8' then astype: explicit little-endian view, native for the math.
    words = padded.view("<u8").astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        words[:, -1] |= np.uint64((size & 0xFF) << 56)
        return _siphash24_word_lanes(
            key, [words[:, j] for j in range(n_words)], n
        )


def _siphash24_word_lanes(key: bytes, words, n: int) -> list[int]:
    """Run the lane rounds over pre-built message words.

    ``words`` is one uint64 entry per 8-byte message block — an array of
    per-message words, or a scalar when the block is the same for every
    message (the constant final block of 8-byte messages).
    """
    np = _np
    with np.errstate(over="ignore"):
        k0 = np.uint64(int.from_bytes(key[:8], "little"))
        k1 = np.uint64(int.from_bytes(key[8:], "little"))
        v0 = np.full(n, k0 ^ np.uint64(_IV0), dtype=np.uint64)
        v1 = np.full(n, k1 ^ np.uint64(_IV1), dtype=np.uint64)
        v2 = np.full(n, k0 ^ np.uint64(_IV2), dtype=np.uint64)
        v3 = np.full(n, k1 ^ np.uint64(_IV3), dtype=np.uint64)

        r13, r16, r17, r21, r32 = (np.uint64(b) for b in (13, 16, 17, 21, 32))
        r51, r48, r47, r43 = (np.uint64(64 - b) for b in (13, 16, 17, 21))

        def sipround() -> None:
            nonlocal v0, v1, v2, v3
            v0 = v0 + v1
            v1 = (v1 << r13) | (v1 >> r51)
            v1 ^= v0
            v0 = (v0 << r32) | (v0 >> r32)
            v2 = v2 + v3
            v3 = (v3 << r16) | (v3 >> r48)
            v3 ^= v2
            v0 = v0 + v3
            v3 = (v3 << r21) | (v3 >> r43)
            v3 ^= v0
            v2 = v2 + v1
            v1 = (v1 << r17) | (v1 >> r47)
            v1 ^= v2
            v2 = (v2 << r32) | (v2 >> r32)

        for m in words:
            v3 ^= m
            sipround()
            sipround()
            v0 ^= m

        v2 ^= np.uint64(0xFF)
        sipround()
        sipround()
        sipround()
        sipround()
        return (v0 ^ v1 ^ v2 ^ v3).tolist()
