"""Pure-Python SipHash-2-4 (Aumasson & Bernstein, INDOCRYPT 2012).

The paper's implementation (§4.3) uses SipHash as the keyed checksum hash so
that malicious workloads cannot target collisions at a victim whose key they
do not know.  This module is a from-scratch implementation of the 64-bit
variant, bit-compatible with the reference ``siphash24`` C code.
"""

from __future__ import annotations

_MASK = 0xFFFFFFFFFFFFFFFF

# Initialisation constants: ASCII "somepseudorandomlygeneratedbytes".
_IV0 = 0x736F6D6570736575
_IV1 = 0x646F72616E646F6D
_IV2 = 0x6C7967656E657261
_IV3 = 0x7465646279746573


def _rotl(x: int, b: int) -> int:
    """Rotate the 64-bit integer ``x`` left by ``b`` bits."""
    return ((x << b) | (x >> (64 - b))) & _MASK


def siphash24(key: bytes, data: bytes) -> int:
    """Return the SipHash-2-4 of ``data`` under the 16-byte ``key``.

    The result is an unsigned 64-bit integer.  Raises ``ValueError`` when the
    key is not exactly 16 bytes, matching the reference implementation's
    contract.
    """
    if len(key) != 16:
        raise ValueError(f"SipHash key must be 16 bytes, got {len(key)}")

    k0 = int.from_bytes(key[:8], "little")
    k1 = int.from_bytes(key[8:], "little")
    v0 = k0 ^ _IV0
    v1 = k1 ^ _IV1
    v2 = k0 ^ _IV2
    v3 = k1 ^ _IV3

    def sipround() -> None:
        nonlocal v0, v1, v2, v3
        v0 = (v0 + v1) & _MASK
        v1 = _rotl(v1, 13) ^ v0
        v0 = _rotl(v0, 32)
        v2 = (v2 + v3) & _MASK
        v3 = _rotl(v3, 16) ^ v2
        v0 = (v0 + v3) & _MASK
        v3 = _rotl(v3, 21) ^ v0
        v2 = (v2 + v1) & _MASK
        v1 = _rotl(v1, 17) ^ v2
        v2 = _rotl(v2, 32)

    n_blocks, tail_len = divmod(len(data), 8)
    for i in range(n_blocks):
        m = int.from_bytes(data[8 * i : 8 * i + 8], "little")
        v3 ^= m
        sipround()
        sipround()
        v0 ^= m

    # Final block: remaining bytes, zero padded, with the low byte of the
    # total length in the most significant byte.
    tail = data[8 * n_blocks :]
    m = (len(data) & 0xFF) << 56 | int.from_bytes(
        tail + bytes(7 - tail_len), "little"
    )
    v3 ^= m
    sipround()
    sipround()
    v0 ^= m

    v2 ^= 0xFF
    sipround()
    sipround()
    sipround()
    sipround()
    return v0 ^ v1 ^ v2 ^ v3
