"""Deterministic 64-bit PRNG streams used by the coded-symbol mapping.

The mapping rule of §4.2 derives, for each source symbol, a deterministic
stream of uniform random numbers seeded by the symbol's checksum hash.  We
use splitmix64 (Steele, Lea & Flood; the seeding PRNG of java.util), which
passes BigCrush, needs two multiplications per output, and — critically —
is a pure function of its 64-bit state, so encoder and decoder derive
identical streams from a recovered symbol.
"""

from __future__ import annotations

# The splitmix64 constants are public: the batch samplers in
# ``repro.core.cellbank`` inline the state transition (both as local-variable
# arithmetic and as NumPy uint64 vectors) and must stay bit-identical to
# :class:`Splitmix64`.
MASK64 = 0xFFFFFFFFFFFFFFFF
GAMMA = 0x9E3779B97F4A7C15
MIX1 = 0xBF58476D1CE4E5B9
MIX2 = 0x94D049BB133111EB

# 2^-53: floats are mapped from the top 53 bits so the result is strictly
# below 1.0 (a full 64-bit value times 2^-64 can round *up* to 1.0).
INV_2_53 = 1.0 / 9007199254740992.0

_MASK = MASK64
_GAMMA = GAMMA
_MIX1 = MIX1
_MIX2 = MIX2
_INV_2_53 = INV_2_53


def mix64(z: int) -> int:
    """The splitmix64 finaliser: a cheap, high-quality 64-bit mixer.

    Used as the checksum hash in the Monte Carlo fast path, where source
    symbols are already uniform 64-bit integers and keying is irrelevant.
    """
    z = (z ^ (z >> 30)) * _MIX1 & _MASK
    z = (z ^ (z >> 27)) * _MIX2 & _MASK
    return z ^ (z >> 31)


def mix64_lanes(z):
    """:func:`mix64` over a NumPy uint64 array (element-for-element equal).

    The caller supplies (and therefore has) NumPy; the array form is what
    the batched IBLT table fills hash their position lanes with.  Wrap-on-
    overflow multiplication is exactly the ``& MASK`` of the scalar path.
    """
    import numpy as np

    u30, u27, u31 = np.uint64(30), np.uint64(27), np.uint64(31)
    with np.errstate(over="ignore"):
        z = (z ^ (z >> u30)) * np.uint64(MIX1)
        z = (z ^ (z >> u27)) * np.uint64(MIX2)
        return z ^ (z >> u31)


class Splitmix64:
    """A splitmix64 stream.

    >>> rng = Splitmix64(seed=42)
    >>> a, b = rng.next_u64(), rng.next_u64()
    >>> Splitmix64(seed=42).next_u64() == a
    True
    """

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _MASK

    def next_u64(self) -> int:
        """Advance the stream and return the next unsigned 64-bit output."""
        self.state = (self.state + _GAMMA) & _MASK
        return mix64(self.state)

    def next_float(self) -> float:
        """Return the next output mapped uniformly into ``[0, 1)``."""
        return (self.next_u64() >> 11) * _INV_2_53

    def fork(self) -> "Splitmix64":
        """Return an independent stream seeded from this one's next output."""
        return Splitmix64(self.next_u64())
