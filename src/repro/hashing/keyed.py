"""Keyed 64-bit hash families for symbol checksums.

§4.3 of the paper argues that a *keyed* 64-bit hash suffices against
adversarial workloads: the attacker can enumerate collisions for a known
function, but not for a secret key.  Two interchangeable families are
provided:

* :class:`SipHasher` — the paper's choice, backed by our pure-Python
  SipHash-2-4 (bit-faithful but interpreter-speed);
* :class:`Blake2bHasher` — ``hashlib.blake2b`` with ``digest_size=8`` and
  the same 16-byte key, a keyed PRF that runs at C speed.  This is the
  default for benchmarks (a documented substitution).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

from repro.hashing.siphash import siphash24

DEFAULT_KEY = bytes(range(16))


class KeyedHasher(Protocol):
    """Anything that maps ``bytes`` to an unsigned 64-bit integer."""

    key: bytes

    def hash64(self, data: bytes) -> int:
        """Return the keyed 64-bit hash of ``data``."""
        ...


class SipHasher:
    """SipHash-2-4 keyed hasher (the paper's checksum hash)."""

    __slots__ = ("key",)

    def __init__(self, key: bytes = DEFAULT_KEY) -> None:
        if len(key) != 16:
            raise ValueError("SipHash key must be 16 bytes")
        self.key = key

    def hash64(self, data: bytes) -> int:
        return siphash24(self.key, data)


class Blake2bHasher:
    """Keyed BLAKE2b truncated to 64 bits; C-speed stand-in for SipHash."""

    __slots__ = ("key",)

    def __init__(self, key: bytes = DEFAULT_KEY) -> None:
        if not 1 <= len(key) <= 64:
            raise ValueError("BLAKE2b key must be 1..64 bytes")
        self.key = key

    def hash64(self, data: bytes) -> int:
        digest = hashlib.blake2b(data, digest_size=8, key=self.key).digest()
        return int.from_bytes(digest, "little")


def make_hasher(kind: str = "blake2b", key: bytes = DEFAULT_KEY) -> KeyedHasher:
    """Build a keyed hasher by name (``"blake2b"`` or ``"siphash"``)."""
    if kind == "blake2b":
        return Blake2bHasher(key)
    if kind == "siphash":
        return SipHasher(key)
    raise ValueError(f"unknown hasher kind: {kind!r}")


def hash_fn_of(hasher: KeyedHasher) -> Callable[[bytes], int]:
    """Return the bound ``hash64`` of ``hasher`` (a micro-optimisation that
    avoids attribute lookups in the encoder/decoder hot loops)."""
    return hasher.hash64
