"""Keyed 64-bit hash families for symbol checksums.

§4.3 of the paper argues that a *keyed* 64-bit hash suffices against
adversarial workloads: the attacker can enumerate collisions for a known
function, but not for a secret key.  Two interchangeable families are
provided:

* :class:`SipHasher` — the paper's choice, backed by our pure-Python
  SipHash-2-4 (bit-faithful but interpreter-speed);
* :class:`Blake2bHasher` — ``hashlib.blake2b`` with ``digest_size=8`` and
  the same 16-byte key, a keyed PRF that runs at C speed.  This is the
  default for benchmarks (a documented substitution).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol, Sequence

from repro.hashing.siphash import siphash24, siphash24_batch, siphash24_int_batch

DEFAULT_KEY = bytes(range(16))


class KeyedHasher(Protocol):
    """Anything that maps ``bytes`` to an unsigned 64-bit integer.

    Implementations *may* additionally provide
    ``hash64_batch(items) -> list[int]`` — keyed hashes of many
    equal-length items, element-for-element identical to ``hash64`` per
    item but amortising per-call overhead (SipHash runs its rounds as
    uint64 lane arithmetic).  It is deliberately not part of this
    protocol: consumers probe for it and fall back to a ``hash64`` loop
    (see :meth:`repro.core.symbols.SymbolCodec.checksum_batch`), so
    hash64-only hashers stay valid.
    """

    key: bytes

    def hash64(self, data: bytes) -> int:
        """Return the keyed 64-bit hash of ``data``."""
        ...


class SipHasher:
    """SipHash-2-4 keyed hasher (the paper's checksum hash)."""

    __slots__ = ("key",)

    def __init__(self, key: bytes = DEFAULT_KEY) -> None:
        if len(key) != 16:
            raise ValueError("SipHash key must be 16 bytes")
        self.key = key

    def hash64(self, data: bytes) -> int:
        return siphash24(self.key, data)

    def hash64_batch(self, items: Sequence[bytes]) -> list[int]:
        return siphash24_batch(self.key, items)

    def hash64_int_batch(self, values: Sequence[int], size: int) -> list[int]:
        """Keyed hashes of ``size``-byte little-endian integer messages.

        Identical to hashing ``v.to_bytes(size, "little")`` per value;
        a message of ≤ 8 bytes is a single SipHash block, so the lane
        engine builds its padded words straight from the integers.
        """
        return siphash24_int_batch(self.key, values, size)


class Blake2bHasher:
    """Keyed BLAKE2b truncated to 64 bits; C-speed stand-in for SipHash."""

    __slots__ = ("key",)

    def __init__(self, key: bytes = DEFAULT_KEY) -> None:
        if not 1 <= len(key) <= 64:
            raise ValueError("BLAKE2b key must be 1..64 bytes")
        self.key = key

    def hash64(self, data: bytes) -> int:
        digest = hashlib.blake2b(data, digest_size=8, key=self.key).digest()
        return int.from_bytes(digest, "little")

    def hash64_batch(self, items: Sequence[bytes]) -> list[int]:
        # BLAKE2b has no lane form; one tight C-call loop, no attribute
        # walks — the batch contract is about call shape, not engine.
        blake2b = hashlib.blake2b
        key = self.key
        from_bytes = int.from_bytes
        return [
            from_bytes(blake2b(data, digest_size=8, key=key).digest(), "little")
            for data in items
        ]

    def hash64_int_batch(self, values: Sequence[int], size: int) -> list[int]:
        """Keyed hashes of ``size``-byte little-endian integer messages."""
        blake2b = hashlib.blake2b
        key = self.key
        from_bytes = int.from_bytes
        return [
            from_bytes(
                blake2b(
                    v.to_bytes(size, "little"), digest_size=8, key=key
                ).digest(),
                "little",
            )
            for v in values
        ]


def make_hasher(kind: str = "blake2b", key: bytes = DEFAULT_KEY) -> KeyedHasher:
    """Build a keyed hasher by name (``"blake2b"`` or ``"siphash"``)."""
    if kind == "blake2b":
        return Blake2bHasher(key)
    if kind == "siphash":
        return SipHasher(key)
    raise ValueError(f"unknown hasher kind: {kind!r}")


def hash_fn_of(hasher: KeyedHasher) -> Callable[[bytes], int]:
    """Return the bound ``hash64`` of ``hasher`` (a micro-optimisation that
    avoids attribute lookups in the encoder/decoder hot loops)."""
    return hasher.hash64
