"""Shard backends: what turns a shard's items into bytes for a session.

The tentpole backend is :class:`WarmRibltBackend` — the paper's
"universal stream" (§4.1, §7.3) made operational.  Each shard owns ONE
:class:`~repro.core.encoder.RatelessEncoder` shared by every session the
server ever serves: a new client costs no encoding work for any cell
another client already pulled (the cached bank is just re-serialized),
and set churn patches the cached prefix in place via linearity instead
of re-encoding.  Per-session state is only a cursor: a stream index and
a §6 writer.

Any other scheme registered in :mod:`repro.api` can back a shard too:

* streaming schemes ride :class:`SchemeStreamBackend` (a fresh
  per-session :class:`~repro.api.base.StreamingReconciler`, no warm
  reuse — the interface does not promise shareable state);
* serializable fixed-capacity / one-shot schemes ride
  :class:`SketchBackend`, which serves a ``bound``-sized sketch and
  rebuilds it on client ``RETRY`` (the estimator-then-sized-sketch
  composition of :mod:`repro.api.session`, pushed over the wire).

Consistency: every stream cursor snapshots its shard's version at open;
a mutation mid-stream makes the already-sent prefix and the yet-unsent
suffix describe *different* sets, so the cursor refuses to continue
(:class:`StaleStream`) rather than serve a stream that can never decode
to a meaningful difference.  Clients simply reconnect; the warm bank
they then read is already patched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.api.base import StreamingReconciler, UnsupportedOperation
from repro.api.registry import Scheme
from repro.core.encoder import RatelessEncoder
from repro.core.symbols import SymbolCodec
from repro.core.wire import SymbolStreamWriter
from repro.service.errors import ServiceError
from repro.service.framing import SyncMode
from repro.service.shard import ShardedSet


class StaleStream(ServiceError):
    """The shard's set changed while a session was mid-stream."""


def _group_by_shard(
    items: list[bytes], placed: list[int]
) -> dict[int, list[bytes]]:
    """Bucket a placed batch per shard, preserving batch order."""
    groups: dict[int, list[bytes]] = {}
    for item, shard in zip(items, placed):
        groups.setdefault(shard, []).append(item)
    return groups


class ShardStream(ABC):
    """One session's cursor into one shard's coded-symbol stream."""

    symbols_sent: int = 0

    @abstractmethod
    def next_block(self, max_cells: int) -> bytes:
        """The next ``max_cells`` coded symbols, wire-framed (§6)."""


class ShardBackend(ABC):
    """Per-shard byte production plus set mutation for one server."""

    mode: SyncMode

    def __init__(self, handle: Scheme, sharded: ShardedSet) -> None:
        self.handle = handle
        self.sharded = sharded

    @property
    def scheme(self) -> str:
        return self.handle.name

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    def add(self, item: bytes) -> int:
        """Account a new item; returns the shard it landed in."""
        return self.sharded.add(item)

    def remove(self, item: bytes) -> int:
        """Drop an item; returns the shard it left."""
        return self.sharded.remove(item)

    def add_many(self, items: Iterable[bytes]) -> list[int]:
        """Account a batch of items; returns each item's shard.

        One version bump per touched shard.  Backends with warm per-shard
        state override this to patch it batch-at-a-time.
        """
        return self.sharded.add_many(items)

    def remove_many(self, items: Iterable[bytes]) -> list[int]:
        """Drop a batch of items; returns each item's shard."""
        return self.sharded.remove_many(items)

    def open_stream(self, shard: int) -> ShardStream:
        raise UnsupportedOperation(f"{type(self).__name__} does not stream")

    def build_sketch(self, shard: int, bound: int) -> bytes:
        raise UnsupportedOperation(f"{type(self).__name__} does not sketch")


class _WarmStream(ShardStream):
    """Cursor over a shared warm encoder: reads cached cells, owns only
    the §6 serialisation state (header + implicit indices + set size)."""

    def __init__(self, backend: "WarmRibltBackend", shard: int) -> None:
        self._backend = backend
        self._shard = shard
        self._encoder = backend.encoders[shard]
        self._version = backend.sharded.versions[shard]
        self._writer = SymbolStreamWriter(
            backend.codec, set_size=self._encoder.set_size
        )
        self._head: Optional[bytes] = self._writer.header()
        self._index = 0
        self.symbols_sent = 0

    def next_block(self, max_cells: int) -> bytes:
        backend = self._backend
        if backend.sharded.versions[self._shard] != self._version:
            raise StaleStream(
                f"shard {self._shard} mutated mid-stream; reconnect to resync"
            )
        lo = self._index
        self._index += max_cells
        # cached_block only *encodes* cells nobody has pulled yet; every
        # prefix cell any previous session produced is reused as-is.
        bank = self._encoder.cached_block(lo, self._index)
        self.symbols_sent = self._index
        head = self._head or b""
        self._head = None
        return head + self._writer.write_block(bank)


class WarmRibltBackend(ShardBackend):
    """One warm, continuously patched Rateless-IBLT encoder per shard.

    ``encoders`` is the durable-store load hook: recovery rebuilds each
    shard's encoder from its snapshot (exact parked walk state + cached
    bank) and hands them in ready-made instead of re-ingesting
    ``sharded``.  They must be index-aligned with ``sharded.shards``
    and hold the same members.
    """

    mode = SyncMode.STREAM

    def __init__(
        self,
        handle: Scheme,
        sharded: ShardedSet,
        codec: SymbolCodec,
        encoders: Optional[list[RatelessEncoder]] = None,
    ) -> None:
        super().__init__(handle, sharded)
        self.codec = codec
        if encoders is None:
            encoders = [RatelessEncoder(codec, members) for members in sharded.shards]
        elif len(encoders) != sharded.num_shards:
            raise ValueError(
                f"{len(encoders)} encoders adopted for {sharded.num_shards} shards"
            )
        self.encoders = encoders

    def add(self, item: bytes) -> int:
        shard = self.sharded.add(item)
        self.encoders[shard].add_item(item)  # patches the cached prefix
        return shard

    def remove(self, item: bytes) -> int:
        shard = self.sharded.remove(item)
        self.encoders[shard].remove_item(item)
        return shard

    def add_many(self, items: Iterable[bytes]) -> list[int]:
        """Batch churn: group by shard, one fused warm-bank patch each."""
        items = items if isinstance(items, list) else list(items)
        placed = self.sharded.add_many(items)
        for shard, group in _group_by_shard(items, placed).items():
            self.encoders[shard].add_items(group)
        return placed

    def remove_many(self, items: Iterable[bytes]) -> list[int]:
        """Batch churn: group by shard, one fused warm-bank patch each."""
        items = items if isinstance(items, list) else list(items)
        placed = self.sharded.remove_many(items)
        for shard, group in _group_by_shard(items, placed).items():
            self.encoders[shard].remove_items(group)
        return placed

    def open_stream(self, shard: int) -> ShardStream:
        return _WarmStream(self, shard)

    def cached_symbols(self, shard: int) -> int:
        """Length of the shard's cached prefix (observability)."""
        return self.encoders[shard].produced_count


class _SchemeStream(ShardStream):
    """Cursor over a per-session StreamingReconciler (cold build)."""

    def __init__(
        self,
        reconciler: StreamingReconciler,
        backend: "SchemeStreamBackend",
        shard: int,
    ) -> None:
        self._reconciler = reconciler
        self._backend = backend
        self._shard = shard
        self._version = backend.sharded.versions[shard]
        self.symbols_sent = 0

    def next_block(self, max_cells: int) -> bytes:
        if self._backend.sharded.versions[self._shard] != self._version:
            raise StaleStream(
                f"shard {self._shard} mutated mid-stream; reconnect to resync"
            )
        self.symbols_sent += max_cells
        return self._reconciler.produce_block(max_cells)


class SchemeStreamBackend(ShardBackend):
    """Any registered streaming scheme; sessions get cold reconcilers."""

    mode = SyncMode.STREAM

    def open_stream(self, shard: int) -> ShardStream:
        reconciler = self.handle.new(list(self.sharded.shards[shard]))
        assert isinstance(reconciler, StreamingReconciler)
        return _SchemeStream(reconciler, self, shard)


class SketchBackend(ShardBackend):
    """Serializable fixed-capacity / one-shot schemes: sized sketches."""

    mode = SyncMode.SKETCH

    def build_sketch(self, shard: int, bound: int) -> bytes:
        sized = self.handle.sized_for(max(1, bound))
        return sized.new(list(self.sharded.shards[shard])).serialize()


def make_backend(
    handle: Scheme, sharded: ShardedSet, codec: Optional[SymbolCodec]
) -> ShardBackend:
    """The right backend for a scheme's capabilities.

    ``codec`` is the shared symbol codec when the scheme has one (used
    by the warm fast path); registry integration means *any* scheme can
    back a shard — streaming schemes as live streams, serializable ones
    as sized sketches.  Only schemes that can neither stream nor ship a
    sketch (Merkle's interactive heal) are rejected.
    """
    caps = handle.capabilities
    if caps.streaming:
        if handle.name == "riblt" and codec is not None:
            return WarmRibltBackend(handle, sharded, codec)
        return SchemeStreamBackend(handle, sharded)
    if caps.serializable:
        return SketchBackend(handle, sharded)
    raise ValueError(
        f"scheme {handle.name!r} can neither stream nor serialize a sketch; "
        "it cannot back a service shard"
    )
