"""Keyed hash-partitioning of a set into independently reconciled shards.

Sharding turns one huge reconciliation into ``N`` small, embarrassingly
parallel ones: each shard is its own coded-symbol stream with its own
termination, so a server can interleave them over one connection and a
client can finish cheap shards early while a hot shard keeps streaming.

Placement must be *identical* on both peers, so the router hashes with
the same keyed 64-bit hash the codec uses for checksums — mixed through
an extra splitmix64 round with a salt, so shard membership is
decorrelated from the checksum values that seed the §4.2 index mapping.
Peers that disagree on the hash family or key will disagree on
placement (and on checksums); the service handshake carries a key probe
to reject that pairing before any symbols flow.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Sequence

from repro.hashing.prng import mix64, mix64_lanes

try:  # pragma: no cover - exercised implicitly by the lane dispatch tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

NUMPY_LANE = _np is not None and os.environ.get("REPRO_NO_NUMPY", "") != "1"

# Below this the batch-placement set-up costs more than the scalar loop.
_NUMPY_MIN_BATCH = 32

# Any fixed constant works; it only needs to differ from the identity so
# the shard index and the checksum are independent functions of hash64.
_SHARD_SALT = 0x5379_6E63_5368_6172  # "SyncShar"

# A fixed probe string both peers hash during the handshake: equal keyed
# hashes => almost certainly equal (hasher, key) pairs, without either
# key crossing the wire.
_KEY_PROBE_DATA = b"repro.service key probe v1"


def shard_of(hash64: Callable[[bytes], int], item: bytes, num_shards: int) -> int:
    """The shard ``item`` belongs to (identical for peers sharing the hash)."""
    return mix64(hash64(item) ^ _SHARD_SALT) % num_shards


def hash_items(
    hash64: Callable[[bytes], int], items: Sequence[bytes]
) -> list[int]:
    """The keyed 64-bit hashes of many items, in order.

    These are exactly the values shard placement mixes *and* the codec
    masks into checksums, so a caller that keeps them pays for hashing
    once instead of twice (see :func:`partition_with_hashes` and
    ``Scheme.new(..., item_hashes=...)``).  Routed through the hasher's
    batch face when ``hash64`` is a bound method of one (equal-length
    items only — the SipHash lane engine's contract); any other shape
    takes the scalar loop, element-for-element identical.
    """
    if not items:
        return []
    hasher = getattr(hash64, "__self__", None)
    batch = getattr(hasher, "hash64_batch", None)
    if (
        batch is not None
        and getattr(hasher, "hash64", None) == hash64
        and len(set(map(len, items))) <= 1
    ):
        return list(batch(items))
    return [hash64(item) for item in items]


def placements_from_hashes(hashes: Sequence[int], num_shards: int) -> list[int]:
    """Shard placements from precomputed keyed hashes, in order.

    ``placements_from_hashes(hash_items(h, items), n)`` is
    element-for-element identical to ``shards_of(h, items, n)``.
    """
    n = len(hashes)
    if NUMPY_LANE and n >= _NUMPY_MIN_BATCH:
        arr = _np.array(hashes, dtype=_np.uint64)
        mixed = mix64_lanes(arr ^ _np.uint64(_SHARD_SALT))
        return (mixed % _np.uint64(num_shards)).astype(_np.int64).tolist()
    return [mix64(h ^ _SHARD_SALT) % num_shards for h in hashes]


def shards_of(
    hash64: Callable[[bytes], int], items: Sequence[bytes], num_shards: int
) -> list[int]:
    """:func:`shard_of` of many items at once, in order.

    Element-for-element identical to the scalar function.  When ``hash64``
    is the bound method of a hasher exposing ``hash64_batch`` (SipHash runs
    its rounds as uint64 lane arithmetic) and the items share one length,
    the keyed hashes come from one batch call and the salt/mix/modulo run
    as a single uint64 lane pass; any other shape falls back to the loop.
    """
    n = len(items)
    if NUMPY_LANE and n >= _NUMPY_MIN_BATCH:
        hasher = getattr(hash64, "__self__", None)
        batch = getattr(hasher, "hash64_batch", None)
        if batch is not None and getattr(hasher, "hash64", None) == hash64:
            if len(set(map(len, items))) == 1:
                hashes = _np.array(batch(items), dtype=_np.uint64)
                mixed = mix64_lanes(hashes ^ _np.uint64(_SHARD_SALT))
                return (mixed % _np.uint64(num_shards)).astype(_np.int64).tolist()
    return [shard_of(hash64, item, num_shards) for item in items]


def key_probe(hash64: Callable[[bytes], int]) -> int:
    """64-bit handshake probe identifying the (hasher, key) pair."""
    return hash64(_KEY_PROBE_DATA)


class ShardedSet:
    """A set of fixed-width items, hash-partitioned into ``num_shards``.

    Tracks a per-shard ``version`` that bumps on every mutation; stream
    cursors snapshot it to detect (and refuse to serve) a stream whose
    underlying set changed mid-flight.
    """

    def __init__(
        self,
        hash64: Callable[[bytes], int],
        num_shards: int,
        items: Iterable[bytes] = (),
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.hash64 = hash64
        self.num_shards = num_shards
        self.shards: list[set[bytes]] = [set() for _ in range(num_shards)]
        self.versions: list[int] = [0] * num_shards
        items = items if isinstance(items, list) else list(items)
        # Batch the placement hashing but keep per-item add semantics
        # (duplicate detection and one version bump per item).
        for item, shard in zip(items, self.place_many(items)):
            members = self.shards[shard]
            if item in members:
                raise KeyError(f"duplicate item: {item.hex()}")
            members.add(item)
            self.versions[shard] += 1

    # -- placement (the overridable core; subset sets remap it) -----------

    def place(self, item: bytes) -> int:
        """The local shard index ``item`` belongs to."""
        return shard_of(self.hash64, item, self.num_shards)

    def place_many(self, items: Sequence[bytes]) -> list[int]:
        """:meth:`place` of many items at once, in order."""
        return shards_of(self.hash64, items, self.num_shards)

    def shard_of(self, item: bytes) -> int:
        return self.place(item)

    def add(self, item: bytes) -> int:
        """Place ``item``; returns its shard.  Raises ``KeyError`` on dup."""
        shard = self.place(item)
        members = self.shards[shard]
        if item in members:
            raise KeyError(f"duplicate item: {item.hex()}")
        members.add(item)
        self.versions[shard] += 1
        return shard

    def remove(self, item: bytes) -> int:
        """Remove ``item``; returns its shard.  Raises ``KeyError`` if absent."""
        shard = self.place(item)
        members = self.shards[shard]
        if item not in members:
            raise KeyError(f"item not in set: {item.hex()}")
        members.remove(item)
        self.versions[shard] += 1
        return shard

    def add_many(self, items: Iterable[bytes]) -> list[int]:
        """Place a batch of items; returns each item's shard, in order.

        All-or-nothing: a duplicate (against the set or inside the batch)
        raises ``KeyError`` before anything is placed.  Each touched
        shard's version bumps once per batch — one stream invalidation
        per churn event, not one per item.
        """
        items = items if isinstance(items, list) else list(items)
        placed = self.place_many(items)
        seen: set[bytes] = set()
        for item, shard in zip(items, placed):
            if item in self.shards[shard] or item in seen:
                raise KeyError(f"duplicate item: {item.hex()}")
            seen.add(item)
        touched: set[int] = set()
        for item, shard in zip(items, placed):
            self.shards[shard].add(item)
            touched.add(shard)
        for shard in touched:
            self.versions[shard] += 1
        return placed

    def remove_many(self, items: Iterable[bytes]) -> list[int]:
        """Drop a batch of items; returns each item's shard, in order.

        All-or-nothing, mirroring :meth:`add_many` (an absent item — or
        one named twice in the batch — raises before anything changes).
        """
        items = items if isinstance(items, list) else list(items)
        placed = self.place_many(items)
        seen: set[bytes] = set()
        for item, shard in zip(items, placed):
            if item not in self.shards[shard] or item in seen:
                raise KeyError(f"item not in set: {item.hex()}")
            seen.add(item)
        touched: set[int] = set()
        for item, shard in zip(items, placed):
            self.shards[shard].remove(item)
            touched.add(shard)
        for shard in touched:
            self.versions[shard] += 1
        return placed

    def __contains__(self, item: bytes) -> bool:
        return item in self.shards[self.place(item)]

    def __len__(self) -> int:
        return sum(len(members) for members in self.shards)

    def __iter__(self) -> Iterator[bytes]:
        for members in self.shards:
            yield from members


class ShardSubsetSet(ShardedSet):
    """A :class:`ShardedSet` owning only a subset of a larger shard space.

    A cluster worker hosts the global shards ``owned`` out of
    ``total_shards``: placement hashes against the *global* shard count
    (so every peer agrees on routing) and then remaps to the worker's
    dense local indices.  An item whose global shard is not owned raises
    ``KeyError`` from mutations and is simply not contained.
    """

    def __init__(
        self,
        hash64: Callable[[bytes], int],
        total_shards: int,
        owned: Sequence[int],
        items: Iterable[bytes] = (),
    ) -> None:
        owned = tuple(owned)
        if not owned:
            raise ValueError("a shard subset must own at least one shard")
        if len(set(owned)) != len(owned):
            raise ValueError(f"duplicate shards in subset: {owned}")
        for g in owned:
            if not 0 <= g < total_shards:
                raise ValueError(f"shard {g} outside [0, {total_shards})")
        self.total_shards = total_shards
        self.owned = owned
        self._local = {g: i for i, g in enumerate(owned)}
        super().__init__(hash64, len(owned), items)

    def place(self, item: bytes) -> int:
        g = shard_of(self.hash64, item, self.total_shards)
        try:
            return self._local[g]
        except KeyError:
            raise KeyError(
                f"item {item.hex()} places in unowned shard {g}"
            ) from None

    def place_many(self, items: Sequence[bytes]) -> list[int]:
        local = self._local
        out: list[int] = []
        for item, g in zip(items, shards_of(self.hash64, items, self.total_shards)):
            try:
                out.append(local[g])
            except KeyError:
                raise KeyError(
                    f"item {item.hex()} places in unowned shard {g}"
                ) from None
        return out

    def __contains__(self, item: bytes) -> bool:
        g = shard_of(self.hash64, item, self.total_shards)
        local = self._local.get(g)
        return local is not None and item in self.shards[local]


def partition_items(
    hash64: Callable[[bytes], int], items: Iterable[bytes], num_shards: int
) -> list[list[bytes]]:
    """One-shot partition (the client side, which needs no versioning).

    Within each shard the items keep their input order, so deterministic
    inputs give deterministic per-shard reconciler construction.  Large
    inputs bucket through ``itemgetter`` over per-shard index vectors
    (``flatnonzero`` is ascending, preserving input order) instead of a
    per-item append loop.
    """
    shards: list[list[bytes]] = [[] for _ in range(num_shards)]
    items = items if isinstance(items, list) else list(items)
    placed = shards_of(hash64, items, num_shards)
    if NUMPY_LANE and len(items) >= _NUMPY_MIN_BATCH:
        arr = _np.array(placed, dtype=_np.int64)
        for shard in range(num_shards):
            sel = _np.flatnonzero(arr == shard)
            if sel.size == 1:
                shards[shard] = [items[int(sel[0])]]
            elif sel.size:
                shards[shard] = list(itemgetter(*sel.tolist())(items))
        return shards
    for item, shard in zip(items, placed):
        shards[shard].append(item)
    return shards


def partition_with_hashes(
    items: Sequence[bytes], hashes: Sequence[int], num_shards: int
) -> tuple[list[list[bytes]], list[list[int]]]:
    """:func:`partition_items` from precomputed keyed hashes.

    Returns ``(parts, part_hashes)`` where ``parts`` is exactly what
    ``partition_items`` would produce and ``part_hashes[s][i]`` is the
    keyed hash of ``parts[s][i]`` — ready to seed codec checksums
    without hashing the items a second time.
    """
    if len(items) != len(hashes):
        raise ValueError(f"{len(items)} items but {len(hashes)} hashes")
    parts: list[list[bytes]] = [[] for _ in range(num_shards)]
    part_hashes: list[list[int]] = [[] for _ in range(num_shards)]
    placed = placements_from_hashes(hashes, num_shards)
    if NUMPY_LANE and len(items) >= _NUMPY_MIN_BATCH:
        arr = _np.array(placed, dtype=_np.int64)
        for shard in range(num_shards):
            sel = _np.flatnonzero(arr == shard)
            if sel.size == 1:
                idx = int(sel[0])
                parts[shard] = [items[idx]]
                part_hashes[shard] = [hashes[idx]]
            elif sel.size:
                getter = itemgetter(*sel.tolist())
                parts[shard] = list(getter(items))
                part_hashes[shard] = list(getter(hashes))
        return parts, part_hashes
    for item, h, shard in zip(items, hashes, placed):
        parts[shard].append(item)
        part_hashes[shard].append(h)
    return parts, part_hashes
