"""Typed failures of the reconciliation service.

Transport-level framing errors live in :mod:`repro.service.framing`
(:class:`~repro.service.framing.FrameError` and friends); this module
holds the protocol- and session-level hierarchy.  Budget exhaustion is
*not* redefined here — the service raises
:class:`repro.api.SymbolBudgetExceeded` so one ``except`` clause covers
in-process sessions and served sessions alike.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for reconciliation-service failures."""


class ProtocolError(ServiceError):
    """The peer sent something the protocol does not allow here."""


class SchemeMismatch(ProtocolError):
    """Client and server disagree on scheme, codec, key, or sharding."""


class IdleTimeout(ServiceError):
    """The session sat idle past its deadline and was closed.

    Raised server-side when a client connects and then stalls (holding
    its session, shard budget grace, and backpressure state hostage),
    and client-side when the matching typed ``ERROR`` frame arrives.
    """


class WorkerUnavailable(ServiceError, ConnectionError):
    """A cluster worker died mid-session (connection cut, not refused).

    Deliberately *both* a :class:`ServiceError` (typed, inspectable —
    never a hang) and a :class:`ConnectionError` (so an existing
    :class:`~repro.service.client.RetryPolicy` retries it: the
    supervisor restarts crashed workers, and a rerouted attempt is
    expected to succeed).
    """


class ServerBusy(ServiceError):
    """The server shed this connection at admission (overload control).

    Carries the server-suggested ``retry_after`` (seconds) from the
    typed ``ErrorCode.BUSY`` frame.  Deliberately *not* a
    :class:`ConnectionError`: the server is alive and answered — it
    asked this client to back off, and
    :class:`~repro.service.client.RetryPolicy` honours the hint by
    waiting at least ``retry_after`` before the next attempt instead of
    its own (possibly shorter) backoff step.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PeerError(ServiceError):
    """The peer reported a failure this side cannot map to a typed error."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"peer error {code}: {message}")
        self.code = code
        self.peer_message = message
