"""``repro.service`` — asyncio reconciliation serving (paper §1, §7.3).

The paper's deployment story is a server that streams coded symbols to
arbitrarily many clients *without any per-client state or prior
context*: one universal stream, patched incrementally as the set
churns.  This package is that story over real sockets:

:mod:`repro.service.framing`
    Length-prefixed frame layer over TCP, multiplexing per-shard §6
    coded-symbol streams (and one-shot sketches) on one connection.
:mod:`repro.service.shard`
    Keyed hash-partitioning of a set into independently reconciled
    shards, so large sets become N smaller parallel streams.
:mod:`repro.service.backends`
    What produces a shard's bytes: the warm Rateless-IBLT backend
    (one shared, continuously patched encoder per shard — never
    re-encodes for a new client) or any registered scheme from
    :mod:`repro.api`.
:mod:`repro.service.server`
    The asyncio session manager: each connection pumps a
    :class:`~repro.protocol.ResponderMachine` (the sans-io engine),
    with socket backpressure and typed symbol budgets that drop
    runaway sessions.
:mod:`repro.service.client`
    The asyncio client: :func:`~repro.service.client.sync` shuttles
    bytes between the socket and an
    :class:`~repro.protocol.InitiatorMachine`, optionally pushing back
    what the server is missing.
:mod:`repro.service.node`
    :class:`~repro.service.node.ServiceNode`, the high-level peer API
    combining a local set with both roles.
"""

from repro.service.backends import StaleStream
from repro.service.client import RetryPolicy, SyncResult, sync, sync_once
from repro.service.errors import (
    IdleTimeout,
    PeerError,
    ProtocolError,
    SchemeMismatch,
    ServerBusy,
    ServiceError,
    WorkerUnavailable,
)
from repro.service.framing import FrameError, FrameTooLarge, TruncatedFrame
from repro.service.node import ServiceNode
from repro.service.server import ReconciliationServer, ServerConfig, ServerStats

__all__ = [
    "FrameError",
    "FrameTooLarge",
    "IdleTimeout",
    "PeerError",
    "ProtocolError",
    "ReconciliationServer",
    "RetryPolicy",
    "SchemeMismatch",
    "ServerBusy",
    "ServerConfig",
    "ServerStats",
    "ServiceError",
    "ServiceNode",
    "StaleStream",
    "SyncResult",
    "TruncatedFrame",
    "WorkerUnavailable",
    "sync",
    "sync_once",
]
