"""Length-prefixed frame layer: the service's unit of transmission.

A frame is ``uvarint(len) || type-byte || body``.  The §6 coded-symbol
wire format stays untouched inside ``SYMBOLS`` frame bodies — this layer
only adds what a multiplexed TCP connection needs: delimitation (so one
connection can interleave N shard streams), a type tag, and a hard size
cap so a corrupted length prefix cannot balloon the receive buffer.

Both a sans-io incremental decoder (:class:`FrameDecoder`, used by the
robustness tests and any non-asyncio transport) and asyncio stream
helpers (:func:`read_frame` / :func:`write_frame`) are provided.

Frame catalogue (bodies are varint-packed, see the pack helpers)::

    HELLO       c->s  version, scheme, symbol_size, checksum_size,
                      hasher, key_probe, num_shards, block_size, bound
    WELCOME     s->c  version, mode, num_shards, block_size
    SYMBOLS     s->c  shard, <§6 stream bytes>
    SKETCH      s->c  shard, bound, <serialized sketch>
    SHARD_DONE  c->s  shard
    RETRY       c->s  shard, bound          (sketch mode undershoot)
    PUSH        c->s  shard, count, count·symbol_size item bytes
    BYE         c->s  (empty)
    STATS       s->c  symbols_sent, bytes_sent, pushes_applied
    ERROR       both  code, utf-8 message
                      (code BUSY: code, retry_after_ms, utf-8 message)
    ESTIMATE    s->c  <serialized strata estimator summary>

``ESTIMATE`` carries the responder's strata-estimator summary when both
peers agreed (at machine construction — it is not negotiated in HELLO)
to run the estimator-then-sized-sketch composition; the initiator
answers with ``RETRY`` frames that request the first sized sketches.
Legacy sessions never emit it, so the frame catalogue stays
backward-compatible.
"""

from __future__ import annotations

import asyncio
import math
from enum import IntEnum
from typing import Iterator, Optional

from repro.core import varint

PROTOCOL_VERSION = 1

# A frame larger than this is corruption (or abuse), not data: the
# biggest legitimate frames are PUSH bodies and serialized sketches,
# both far below 4 MiB under any sane shard size.
MAX_FRAME_BYTES = 4 << 20

# LEB128 for a value below MAX_FRAME_BYTES fits in 4 bytes; allow the
# full 64-bit width before declaring the prefix malformed.
_MAX_PREFIX_BYTES = 10


class FrameType(IntEnum):
    """The one-byte tag leading every frame body."""

    HELLO = 0x01
    WELCOME = 0x02
    SYMBOLS = 0x03
    SKETCH = 0x04
    SHARD_DONE = 0x05
    RETRY = 0x06
    PUSH = 0x07
    BYE = 0x08
    STATS = 0x09
    ERROR = 0x0A
    ESTIMATE = 0x0B


class ErrorCode(IntEnum):
    """Codes carried by ``ERROR`` frames."""

    PROTOCOL = 1
    BUDGET = 2
    MISMATCH = 3
    STALE = 4
    UNSUPPORTED = 5
    IDLE = 6
    BUSY = 7


class SyncMode(IntEnum):
    """How a scheme's shard bytes travel (announced in ``WELCOME``)."""

    STREAM = 0  # rateless coded-symbol stream, SYMBOLS frames
    SKETCH = 1  # sized sketch + retry doubling, SKETCH frames


class FrameError(Exception):
    """Malformed framing: bad length prefix, unknown type, size cap."""


class FrameTooLarge(FrameError):
    """A frame's declared length exceeds the configured cap."""


class TruncatedFrame(FrameError):
    """The byte source ended in the middle of a frame."""


def encode_frame(ftype: int, body: bytes = b"") -> bytes:
    """Serialise one frame (length prefix covers the type byte)."""
    payload_len = 1 + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {payload_len} bytes exceeds cap")
    return varint.encode_uvarint(payload_len) + bytes((ftype,)) + body


class FrameDecoder:
    """Incremental, transport-agnostic frame parser.

    Feed arbitrary byte chunks; complete frames come out.  State
    survives partial frames across feeds; :meth:`finish` turns a
    mid-frame EOF into a typed error instead of silent data loss.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Append bytes; return every ``(type, body)`` that completed."""
        self._buffer.extend(data)
        frames = list(self._drain())
        return frames

    def _drain(self) -> Iterator[tuple[int, bytes]]:
        buf = self._buffer
        pos = 0
        end = len(buf)
        while pos < end:
            try:
                length, after = varint.decode_uvarint(
                    bytes(buf[pos : pos + _MAX_PREFIX_BYTES])
                )
            except ValueError:
                if end - pos >= _MAX_PREFIX_BYTES:
                    raise FrameError("malformed frame length prefix") from None
                break  # prefix still incomplete
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"frame declares {length} bytes, cap is {self.max_frame}"
                )
            if length < 1:
                raise FrameError("empty frame (no type byte)")
            start = pos + after
            if end - start < length:
                break  # body still incomplete
            yield buf[start], bytes(buf[start + 1 : start + length])
            pos = start + length
        if pos:
            del buf[:pos]

    def finish(self) -> None:
        """Assert the source ended on a frame boundary."""
        if self._buffer:
            raise TruncatedFrame(
                f"stream ended with {len(self._buffer)} bytes of a partial frame"
            )


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF inside a frame raises :class:`TruncatedFrame` — a peer that
    vanishes mid-message must never look like a graceful goodbye.
    """
    length = 0
    shift = 0
    for i in range(_MAX_PREFIX_BYTES):
        try:
            byte = (await reader.readexactly(1))[0]
        except asyncio.IncompleteReadError:
            if i == 0:
                return None  # clean EOF between frames
            raise TruncatedFrame("connection closed inside a frame length") from None
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    else:
        raise FrameError("malformed frame length prefix")
    if length > max_frame:
        raise FrameTooLarge(f"frame declares {length} bytes, cap is {max_frame}")
    if length < 1:
        raise FrameError("empty frame (no type byte)")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed {length - len(exc.partial)} bytes short of a frame"
        ) from None
    return payload[0], payload[1:]


async def write_frame(
    writer: asyncio.StreamWriter, ftype: int, body: bytes = b""
) -> None:
    """Write one frame and apply transport backpressure (``drain``)."""
    writer.write(encode_frame(ftype, body))
    await writer.drain()


# -- body packing -----------------------------------------------------------


class BodyReader:
    """Sequential parser for varint-packed frame bodies."""

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._pos = 0

    def uvarint(self) -> int:
        try:
            value, self._pos = varint.decode_uvarint(self._body, self._pos)
        except ValueError as exc:
            raise FrameError(f"bad frame body: {exc}") from None
        return value

    def raw(self, size: int) -> bytes:
        if len(self._body) - self._pos < size:
            raise FrameError(
                f"bad frame body: wanted {size} bytes, "
                f"{len(self._body) - self._pos} left"
            )
        out = self._body[self._pos : self._pos + size]
        self._pos += size
        return out

    def rest(self) -> bytes:
        out = self._body[self._pos :]
        self._pos = len(self._body)
        return out

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed (optional-tail detection)."""
        return len(self._body) - self._pos

    def lp_bytes(self) -> bytes:
        """A length-prefixed byte string."""
        return self.raw(self.uvarint())

    def lp_str(self) -> str:
        try:
            return self.lp_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"bad frame body: {exc}") from None

    def expect_end(self) -> None:
        if self._pos != len(self._body):
            raise FrameError(
                f"bad frame body: {len(self._body) - self._pos} trailing bytes"
            )


def pack_uvarints(*values: int) -> bytes:
    return b"".join(varint.encode_uvarint(v) for v in values)


def pack_lp(data: bytes) -> bytes:
    return varint.encode_uvarint(len(data)) + data


def pack_lp_str(text: str) -> bytes:
    return pack_lp(text.encode("utf-8"))


def pack_busy_body(retry_after: float, message: str) -> bytes:
    """The ``ERROR`` body for :data:`ErrorCode.BUSY`.

    Alone in the error catalogue, BUSY carries structure beyond its
    message: ``uvarint code | uvarint retry_after_ms | raw utf-8
    message`` — the server-suggested backoff a shed client should wait
    before reconnecting, in integer milliseconds so it varint-packs
    tightly (sub-millisecond hints round up to 1 ms, never to "now").
    """
    millis = int(math.ceil(max(0.0, retry_after) * 1000.0))
    return pack_uvarints(int(ErrorCode.BUSY), millis) + message.encode("utf-8")
