"""The asyncio reconciliation client: :func:`sync` a local set with a server.

The client is the receiving side of §4.1: per shard it builds a local
:class:`~repro.api.base.StreamingReconciler` (any registered streaming
scheme — the scheme's ``absorb`` does the pairwise subtraction and
peeling) and consumes the server's multiplexed frames until every shard
reports decoded.  Fixed-capacity schemes arrive as sized sketches
instead, with client-driven doubling retries — same wire connection,
different frame type.

``push=True`` closes the loop: once everything decoded, the items the
server is missing (this side's exclusives) are pushed back, so both
sets converge in a single session while the server's warm encoders are
patched — not rebuilt — by the incoming items.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.api.base import ReconcileError, StreamingReconciler, SymbolBudgetExceeded
from repro.api.registry import Scheme, get_scheme
from repro.core.decoder import DecodeResult
from repro.service.backends import StaleStream
from repro.service.errors import PeerError, ProtocolError, SchemeMismatch
from repro.service.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BodyReader,
    ErrorCode,
    FrameType,
    SyncMode,
    pack_lp_str,
    pack_uvarints,
    read_frame,
    write_frame,
)
from repro.service.server import _codec_of, _hash64_of
from repro.service.shard import key_probe, partition_items

# Give up on a sketch-mode shard after this many doublings (mirrors
# repro.api.session.DEFAULT_MAX_ROUNDS).
DEFAULT_MAX_ROUNDS = 4


@dataclass
class ShardReport:
    """Per-shard accounting of one sync."""

    shard: int
    symbols: int = 0
    bytes_received: int = 0
    rounds: int = 1
    only_in_server: int = 0
    only_in_client: int = 0


@dataclass
class SyncResult:
    """Everything one :func:`sync` call learned (and spent)."""

    only_in_server: set = field(default_factory=set)
    only_in_client: set = field(default_factory=set)
    scheme: str = "riblt"
    mode: SyncMode = SyncMode.STREAM
    num_shards: int = 1
    symbols: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    pushed: int = 0
    per_shard: list = field(default_factory=list)
    payloads: Optional[dict] = None
    """Raw per-shard wire bytes, captured only when asked (golden tests)."""

    @property
    def difference_size(self) -> int:
        return len(self.only_in_server) + len(self.only_in_client)


class _ShardState:
    """Client-side decoding state for one shard."""

    def __init__(self, shard: int, items: list) -> None:
        self.shard = shard
        self.items = items
        self.reconciler: Optional[StreamingReconciler] = None
        self.report = ShardReport(shard)
        self.done = False
        self.result: Optional[DecodeResult] = None
        self.bound = 0  # sketch mode only


async def sync(
    host: str,
    port: int,
    items: Iterable[bytes],
    *,
    scheme: str = "riblt",
    num_shards: int = 0,
    push: bool = False,
    max_symbols: Optional[int] = None,
    difference_bound: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    capture_payloads: bool = False,
    max_frame: int = MAX_FRAME_BYTES,
    **params: object,
) -> SyncResult:
    """Reconcile ``items`` against the server at ``(host, port)``.

    ``num_shards=0`` adopts the server's shard count (pass a value only
    to assert it).  ``max_symbols`` is this side's per-shard budget —
    exceeding it raises the same typed
    :class:`~repro.api.SymbolBudgetExceeded` a server-side drop
    produces.  ``difference_bound`` seeds sketch-mode sizing (ignored by
    streaming schemes); ``params`` configure the scheme exactly as in
    :func:`repro.api.reconcile`.
    """
    materialised = list(dict.fromkeys(items))
    handle = get_scheme(scheme, **params)
    if handle.params.symbol_size is None:
        if not materialised:
            raise ValueError("syncing an empty set needs an explicit symbol_size")
        handle = handle.with_params(symbol_size=len(materialised[0]))
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await _sync_over(
            reader,
            writer,
            handle,
            materialised,
            num_shards=num_shards,
            push=push,
            max_symbols=max_symbols,
            difference_bound=difference_bound,
            max_rounds=max_rounds,
            capture_payloads=capture_payloads,
            max_frame=max_frame,
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def sync_once(
    host: str, port: int, items: Iterable[bytes], **kwargs: object
) -> SyncResult:
    """Blocking convenience wrapper around :func:`sync` (CLI, scripts)."""
    return asyncio.run(sync(host, port, items, **kwargs))


async def _sync_over(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handle: Scheme,
    items: list,
    *,
    num_shards: int,
    push: bool,
    max_symbols: Optional[int],
    difference_bound: int,
    max_rounds: int,
    capture_payloads: bool,
    max_frame: int,
) -> SyncResult:
    codec = _codec_of(handle)
    hash64 = _hash64_of(handle, codec)
    symbol_size = handle.params.symbol_size
    assert symbol_size is not None
    await write_frame(
        writer,
        FrameType.HELLO,
        pack_uvarints(PROTOCOL_VERSION)
        + pack_lp_str(handle.name)
        + pack_uvarints(
            symbol_size,
            codec.checksum_size if codec is not None else 0,
        )
        + pack_lp_str(str(getattr(handle.params, "hasher", "")))
        + pack_uvarints(
            key_probe(hash64),
            num_shards,
            0,  # block size: server's choice
            difference_bound,
        ),
    )
    frame = await read_frame(reader, max_frame)
    if frame is None:
        raise ProtocolError("server closed the connection before WELCOME")
    ftype, body = frame
    if ftype == FrameType.ERROR:
        _raise_peer_error(body)
    if ftype != FrameType.WELCOME:
        raise ProtocolError(f"expected WELCOME, got frame type {ftype:#x}")
    welcome = BodyReader(body)
    version = welcome.uvarint()
    try:
        mode = SyncMode(welcome.uvarint())
    except ValueError as exc:
        raise ProtocolError(f"unknown sync mode in WELCOME: {exc}") from None
    granted_shards = welcome.uvarint()
    welcome.uvarint()  # server block size: informational
    welcome.expect_end()
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"server speaks protocol {version}, client {PROTOCOL_VERSION}"
        )
    if num_shards and granted_shards != num_shards:
        raise SchemeMismatch(
            f"server runs {granted_shards} shards, caller demanded {num_shards}"
        )

    shards = [
        _ShardState(i, part)
        for i, part in enumerate(partition_items(hash64, items, granted_shards))
    ]
    result = SyncResult(
        scheme=handle.name,
        mode=mode,
        num_shards=granted_shards,
        payloads={i: bytearray() for i in range(granted_shards)}
        if capture_payloads
        else None,
    )
    if mode == SyncMode.STREAM:
        for state in shards:
            state.reconciler = _streaming_reconciler(handle, state.items)
        await _stream_rounds(reader, writer, shards, result, max_symbols, max_frame)
    else:
        await _sketch_rounds(
            reader, writer, handle, shards, result,
            initial_bound=difference_bound, max_rounds=max_rounds, max_frame=max_frame,
        )

    for state in shards:
        decode = state.result
        assert decode is not None
        state.report.only_in_server = len(decode.remote)
        state.report.only_in_client = len(decode.local)
        result.only_in_server.update(decode.remote)
        result.only_in_client.update(decode.local)
        result.per_shard.append(state.report)
        result.symbols += state.report.symbols
        result.bytes_received += state.report.bytes_received

    if push and result.only_in_client:
        await _push_items(writer, hash64, result, symbol_size)
    await write_frame(writer, FrameType.BYE)
    await _await_stats(reader, max_frame)
    return result


def _streaming_reconciler(handle: Scheme, items: list) -> StreamingReconciler:
    reconciler = handle.new(items)
    if not isinstance(reconciler, StreamingReconciler):
        raise ProtocolError(
            f"scheme {handle.name!r} announced stream mode but is not streaming"
        )
    return reconciler


async def _stream_rounds(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shards: list,
    result: SyncResult,
    max_symbols: Optional[int],
    max_frame: int,
) -> None:
    remaining = len(shards)
    while remaining:
        frame = await read_frame(reader, max_frame)
        if frame is None:
            raise ProtocolError("server closed mid-sync (missing shards undecoded)")
        ftype, body = frame
        if ftype == FrameType.ERROR:
            _raise_peer_error(body)
        if ftype != FrameType.SYMBOLS:
            raise ProtocolError(f"expected SYMBOLS, got frame type {ftype:#x}")
        parser = BodyReader(body)
        shard_id = parser.uvarint()
        payload = parser.rest()
        if shard_id >= len(shards):
            raise ProtocolError(f"server sent unknown shard {shard_id}")
        state = shards[shard_id]
        if state.done:
            continue  # frames already in flight when SHARD_DONE crossed them
        if result.payloads is not None:
            result.payloads[shard_id].extend(payload)
        state.report.bytes_received += len(payload)
        reconciler = state.reconciler
        assert reconciler is not None
        decoded = reconciler.absorb(payload)
        state.report.symbols = reconciler.symbols_absorbed
        if decoded:
            state.done = True
            state.result = reconciler.stream_result()
            remaining -= 1
            await write_frame(writer, FrameType.SHARD_DONE, pack_uvarints(shard_id))
        elif max_symbols is not None and state.report.symbols >= max_symbols:
            raise SymbolBudgetExceeded(
                f"shard {shard_id}: no decode within {max_symbols} coded symbols",
                symbols_sent=state.report.symbols,
                max_symbols=max_symbols,
            )


async def _sketch_rounds(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handle: Scheme,
    shards: list,
    result: SyncResult,
    *,
    initial_bound: int,
    max_rounds: int,
    max_frame: int,
) -> None:
    from repro.service.server import DEFAULT_SKETCH_BOUND

    for state in shards:
        state.bound = initial_bound or DEFAULT_SKETCH_BOUND
    remaining = len(shards)
    while remaining:
        frame = await read_frame(reader, max_frame)
        if frame is None:
            raise ProtocolError("server closed mid-sync (missing shards undecoded)")
        ftype, body = frame
        if ftype == FrameType.ERROR:
            _raise_peer_error(body)
        if ftype != FrameType.SKETCH:
            raise ProtocolError(f"expected SKETCH, got frame type {ftype:#x}")
        parser = BodyReader(body)
        shard_id = parser.uvarint()
        bound = parser.uvarint()
        blob = parser.rest()
        if shard_id >= len(shards):
            raise ProtocolError(f"server sent unknown shard {shard_id}")
        state = shards[shard_id]
        if state.done:
            continue
        if result.payloads is not None:
            result.payloads[shard_id].extend(blob)
        state.report.bytes_received += len(blob)
        sized = handle.sized_for(max(1, bound))
        remote = sized.deserialize(blob)
        local = sized.new(state.items)
        decode = remote.subtract(local).decode()
        if decode.success:
            state.done = True
            state.result = decode
            state.report.symbols = decode.symbols_used
            remaining -= 1
            await write_frame(writer, FrameType.SHARD_DONE, pack_uvarints(shard_id))
            continue
        state.report.rounds += 1
        if state.report.rounds > max_rounds:
            raise ReconcileError(
                f"shard {shard_id}: sketch did not decode within "
                f"{max_rounds} doublings (last bound {bound})"
            )
        state.bound = max(1, bound) * 2
        await write_frame(
            writer, FrameType.RETRY, pack_uvarints(shard_id, state.bound)
        )


async def _push_items(
    writer: asyncio.StreamWriter, hash64, result: SyncResult, symbol_size: int
) -> None:
    by_shard = partition_items(
        hash64, sorted(result.only_in_client), result.num_shards
    )
    for shard_id, members in enumerate(by_shard):
        if not members:
            continue
        body = pack_uvarints(shard_id, len(members)) + b"".join(members)
        result.bytes_sent += len(body)
        await write_frame(writer, FrameType.PUSH, body)
        result.pushed += len(members)


async def _await_stats(reader: asyncio.StreamReader, max_frame: int) -> None:
    """Drain frames until the server acknowledges BYE with STATS."""
    while True:
        frame = await read_frame(reader, max_frame)
        if frame is None:
            return  # server closed without STATS; the sync itself succeeded
        ftype, body = frame
        if ftype == FrameType.STATS:
            return
        if ftype == FrameType.ERROR:
            _raise_peer_error(body)
        # late SYMBOLS/SKETCH frames racing the BYE: ignore


def _raise_peer_error(body: bytes) -> None:
    parser = BodyReader(body)
    code = parser.uvarint()
    message = parser.rest().decode("utf-8", errors="replace")
    if code == ErrorCode.BUDGET:
        raise SymbolBudgetExceeded(f"server: {message}", symbols_sent=0, max_symbols=0)
    if code == ErrorCode.STALE:
        raise StaleStream(f"server: {message}")
    if code == ErrorCode.MISMATCH:
        raise SchemeMismatch(f"server: {message}")
    if code in (ErrorCode.PROTOCOL, ErrorCode.UNSUPPORTED):
        raise ProtocolError(f"server: {message}")
    raise PeerError(code, message)
