"""The asyncio reconciliation client: :func:`sync` a local set with a server.

Since the sans-io engine landed, the client is a ~30-line asyncio
adapter: it opens the socket, then shuttles raw bytes between the
stream pair and an :class:`~repro.protocol.InitiatorMachine` — the same
machine the in-memory pump and the simulated-link transport drive, so
the wire behaviour (HELLO handshake, per-shard absorb/SHARD_DONE,
sketch RETRY doubling, PUSH/BYE/STATS) is defined exactly once, in
:mod:`repro.protocol.machine`.

``push=True`` closes the loop: once everything decoded, the items the
server is missing (this side's exclusives) are pushed back, so both
sets converge in a single session while the server's warm encoders are
patched — not rebuilt — by the incoming items.

``retry=RetryPolicy(...)`` makes connection-level failures survivable:
refused/reset/timed-out connections are retried with exponential
backoff and deterministic, seedable jitter.  ``ConnectionError``/
``OSError`` retry, and so does the typed
:class:`~repro.service.errors.ServerBusy` an overloaded server sheds
with — its server-suggested retry-after hint takes precedence over the
policy's own (possibly shorter) backoff step.  Any other *typed*
protocol failure (budget exceeded, scheme mismatch, idle timeout, stale
stream) means both ends are alive and disagree, and retrying would just
replay the disagreement — unless ``retry_frame_errors`` opts into
treating corruption-shaped failures as transient (chaos testing over
deliberately lossy links).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import repro.protocol.machine as protocol_machine
from repro.api.registry import Scheme, get_scheme
from repro.protocol.events import ClusterInfo
from repro.api.base import SymbolBudgetExceeded
from repro.service.defaults import with_service_hasher
from repro.service.errors import (
    IdleTimeout,
    ProtocolError,
    SchemeMismatch,
    ServerBusy,
    WorkerUnavailable,
)
from repro.service.framing import FrameError, MAX_FRAME_BYTES, SyncMode
from repro.service.shard import hash_items

# Give up on a sketch-mode shard after this many doublings (mirrors
# repro.protocol.machine.DEFAULT_MAX_ROUNDS).
DEFAULT_MAX_ROUNDS = 4

_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded reconnect schedule: exponential backoff + seeded jitter.

    ``attempts`` counts *total* connection attempts (1 = no retries).
    The delay before retry ``k`` is ``base_delay * multiplier**(k-1)``
    capped at ``max_delay``, then scaled by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` drawn from ``random.Random(seed)`` —
    so a seeded policy yields an exactly reproducible schedule (tests),
    while the default ``seed=None`` decorrelates a fleet of clients
    that all lost the same server at the same instant.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    retry_frame_errors: bool = False
    """Also retry the typed failures wire corruption decays into —
    :class:`~repro.service.framing.FrameError` (mangled framing),
    :class:`~repro.service.errors.ProtocolError` (a corrupted type
    byte), :class:`~repro.api.SymbolBudgetExceeded` (a poisoned coded
    symbol that can never peel),
    :class:`~repro.service.errors.IdleTimeout` (a stalled or
    blackholed link hitting :func:`sync`'s ``idle_timeout``) —
    excluding :class:`~repro.service.errors.SchemeMismatch`, which is
    a real configuration disagreement a retry would only replay.  Off
    by default: on a healthy link these indicate bugs, not weather."""

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(delay, self.max_delay) * scale
            delay *= self.multiplier


@dataclass
class ShardReport:
    """Per-shard accounting of one sync."""

    shard: int
    symbols: int = 0
    bytes_received: int = 0
    rounds: int = 1
    only_in_server: int = 0
    only_in_client: int = 0


@dataclass
class SyncResult:
    """Everything one :func:`sync` call learned (and spent)."""

    only_in_server: set = field(default_factory=set)
    only_in_client: set = field(default_factory=set)
    scheme: str = "riblt"
    mode: SyncMode = SyncMode.STREAM
    num_shards: int = 1
    symbols: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    pushed: int = 0
    per_shard: list = field(default_factory=list)
    attempts: int = 1
    """Total connection attempts this sync spent (1 = first try won)."""
    busy_waits: int = 0
    """Attempts that ended in a typed ``BUSY`` shed and were retried
    after the server's retry-after hint — the client-side view of the
    server's shed counter."""
    payloads: Optional[dict] = None
    """Raw per-shard wire bytes, captured only when asked (golden tests)."""

    @property
    def difference_size(self) -> int:
        return len(self.only_in_server) + len(self.only_in_client)


def _to_sync_result(report) -> SyncResult:
    result = SyncResult(
        scheme=report.scheme,
        mode=report.mode,
        num_shards=report.num_shards,
        symbols=report.symbols,
        bytes_received=report.payload_bytes,
        bytes_sent=report.push_bytes,
        pushed=report.pushed,
        payloads=report.payloads,
        only_in_server=set(report.only_in_remote),
        only_in_client=set(report.only_in_local),
    )
    for tally in report.per_shard:
        result.per_shard.append(
            ShardReport(
                shard=tally.shard,
                symbols=tally.symbols,
                bytes_received=tally.payload_bytes,
                rounds=tally.rounds,
                only_in_server=tally.only_in_remote,
                only_in_client=tally.only_in_local,
            )
        )
    return result


async def sync(
    host: str,
    port: int,
    items: Iterable[bytes],
    *,
    scheme: str = "riblt",
    num_shards: int = 0,
    push: bool = False,
    max_symbols: Optional[int] = None,
    difference_bound: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    capture_payloads: bool = False,
    max_frame: int = MAX_FRAME_BYTES,
    retry: Optional[RetryPolicy] = None,
    idle_timeout: Optional[float] = None,
    **params: object,
) -> SyncResult:
    """Reconcile ``items`` against the server at ``(host, port)``.

    ``num_shards=0`` adopts the server's shard count (pass a value only
    to assert it).  ``max_symbols`` is this side's per-shard budget —
    exceeding it raises the same typed
    :class:`~repro.api.SymbolBudgetExceeded` a server-side drop
    produces.  ``difference_bound`` seeds sketch-mode sizing (ignored by
    streaming schemes); ``params`` configure the scheme exactly as in
    :func:`repro.api.reconcile`, except that the keyed checksum hash
    defaults to SipHash at the service layer (pass ``hasher="blake2b"``
    to override; see :mod:`repro.service.defaults`).  ``retry`` bounds
    reconnects on
    connection-level failures (see :class:`RetryPolicy`); the default
    ``None`` keeps the historical fail-fast behaviour.  ``idle_timeout``
    is this side's stall deadline: a session in which no byte moves for
    that long fails with a typed
    :class:`~repro.service.errors.IdleTimeout` instead of hanging on a
    blackholed link (``None`` = wait forever, the historical default).
    """
    materialised = list(dict.fromkeys(items))
    handle = get_scheme(scheme, **with_service_hasher(scheme, params))
    if handle.params.symbol_size is None:
        if not materialised:
            raise ValueError("syncing an empty set needs an explicit symbol_size")
        handle = handle.with_params(symbol_size=len(materialised[0]))
    # Hash every item exactly once per sync: shard placement and codec
    # checksums consume the same keyed values, and in a cluster every
    # worker session reuses this one list.
    codec = protocol_machine.codec_of(handle)
    item_hashes = (
        hash_items(codec.hasher.hash64, materialised)
        if codec is not None and materialised
        else None
    )

    async def _session(
        session_host: str,
        session_port: int,
        *,
        expect_worker: Optional[int] = None,
        on_cluster=None,
    ) -> SyncResult:
        reader, writer = await asyncio.open_connection(session_host, session_port)
        try:
            return await _sync_over(
                reader,
                writer,
                handle,
                materialised,
                num_shards=num_shards,
                push=push,
                max_symbols=max_symbols,
                difference_bound=difference_bound,
                max_rounds=max_rounds,
                capture_payloads=capture_payloads,
                max_frame=max_frame,
                item_hashes=item_hashes,
                expect_worker=expect_worker,
                on_cluster=on_cluster,
                idle_timeout=idle_timeout,
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _attempt() -> SyncResult:
        # A solo server answers the dialled port and that is the whole
        # sync.  A cluster worker's WELCOME carries a routing tail; the
        # moment it arrives we fan out one session per *other* worker
        # (their private ports) and merge — the items are partitioned by
        # the same keyed hash everywhere, so the sessions are disjoint.
        cluster_box: list[ClusterInfo] = []
        siblings: list[asyncio.Task] = []

        def _fan_out(info: ClusterInfo) -> None:
            cluster_box.append(info)
            for worker in range(info.num_workers):
                if worker == info.worker_index:
                    continue
                siblings.append(
                    asyncio.ensure_future(
                        _session(
                            host, info.ports[worker], expect_worker=worker
                        )
                    )
                )

        try:
            first = await _session(host, port, on_cluster=_fan_out)
            others = await asyncio.gather(*siblings)
        except BaseException:
            for task in siblings:
                task.cancel()
            await asyncio.gather(*siblings, return_exceptions=True)
            raise
        if not cluster_box or cluster_box[0].num_workers == 1:
            return first
        return _merge_cluster(cluster_box[0], [first, *others])

    if retry is None:
        return await _attempt()
    delays = retry.delays()
    attempts = 1
    busy_waits = 0
    while True:
        try:
            result = await _attempt()
            result.attempts = attempts
            result.busy_waits = busy_waits
            return result
        except ServerBusy as exc:
            # The server shed us with a retry-after hint; honour it —
            # the longer of the hint and the policy's own backoff step,
            # so a fleet's jittered schedules still decorrelate.
            pause = next(delays, None)
            if pause is None:
                raise
            busy_waits += 1
            await asyncio.sleep(max(pause, exc.retry_after))
        except (ConnectionError, OSError):
            pause = next(delays, None)
            if pause is None:
                raise
            await asyncio.sleep(pause)
        except (FrameError, ProtocolError, SymbolBudgetExceeded, IdleTimeout) as exc:
            # Typed protocol errors normally propagate: both ends were
            # alive and disagreed; replaying the session replays the
            # disagreement.  retry_frame_errors opts corruption-shaped
            # failures (and blackhole stalls) back in (chaos testing) —
            # but never a SchemeMismatch, which is configuration, not
            # weather.
            if not retry.retry_frame_errors or isinstance(exc, SchemeMismatch):
                raise
            pause = next(delays, None)
            if pause is None:
                raise
            await asyncio.sleep(pause)
        attempts += 1


def sync_once(
    host: str, port: int, items: Iterable[bytes], **kwargs: object
) -> SyncResult:
    """Blocking convenience wrapper around :func:`sync` (CLI, scripts)."""
    return asyncio.run(sync(host, port, items, **kwargs))


async def _sync_over(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handle: Scheme,
    items: list,
    *,
    num_shards: int,
    push: bool,
    max_symbols: Optional[int],
    difference_bound: int,
    max_rounds: int,
    capture_payloads: bool,
    max_frame: int,
    item_hashes: Optional[list] = None,
    expect_worker: Optional[int] = None,
    on_cluster=None,
    idle_timeout: Optional[float] = None,
) -> SyncResult:
    """Shuttle bytes between the stream pair and an initiator machine.

    ``on_cluster`` fires once, as soon as a cluster WELCOME tail is
    parsed (the caller fans out sessions to the sibling workers).
    ``idle_timeout`` bounds every socket wait (read and drain): a link
    that moves no byte for that long fails typed, never hangs.
    """

    async def _bounded(awaitable, doing: str):
        if idle_timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout=idle_timeout)
        except asyncio.TimeoutError:
            raise IdleTimeout(
                f"no progress {doing} for {idle_timeout:g}s"
            ) from None
    machine = protocol_machine.InitiatorMachine(
        handle,
        items,
        num_shards=num_shards,
        push=push,
        max_symbols=max_symbols,
        difference_bound=difference_bound,
        max_rounds=max_rounds,
        capture_payloads=capture_payloads,
        max_frame=max_frame,
        item_hashes=item_hashes,
        expect_worker=expect_worker,
    )
    machine.start()
    cluster_seen = False
    saw_eof = False
    while not machine.finished:
        out = machine.take_output()
        if out:
            writer.write(out)
            await _bounded(writer.drain(), "draining to server")
        if machine.finished:
            break
        data = await _bounded(reader.read(_READ_CHUNK), "reading from server")
        if not data:
            saw_eof = True
            machine.peer_closed()
        else:
            machine.bytes_received(data)
        if not cluster_seen and machine.cluster is not None:
            cluster_seen = True
            if on_cluster is not None:
                on_cluster(machine.cluster)
    out = machine.take_output()
    if out:
        writer.write(out)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the sync outcome is already decided
    failure = machine.failed
    if failure is not None:
        in_cluster = machine.cluster is not None or expect_worker is not None
        if (
            saw_eof
            and in_cluster
            and isinstance(failure, (ProtocolError, FrameError))
            and not isinstance(failure, SchemeMismatch)
        ):
            # A worker vanishing mid-session cuts the stream (a typed
            # ERROR frame would have arrived *before* EOF and kept
            # saw_eof False).  Retryable: the supervisor restarts it.
            raise WorkerUnavailable(
                f"cluster worker closed mid-session: {failure}"
            ) from failure
        raise failure
    assert machine.report is not None
    return _to_sync_result(machine.report)


def _merge_cluster(info: ClusterInfo, results: list) -> SyncResult:
    """Fold per-worker session results into one cluster-wide result.

    Workers own disjoint global shards, so the difference sets are
    disjoint unions and the counters plain sums; per-shard reports are
    re-sorted by their global shard id.
    """
    merged = SyncResult(
        scheme=results[0].scheme,
        mode=results[0].mode,
        num_shards=info.total_shards,
    )
    payloads: dict = {}
    any_payloads = False
    for result in results:
        merged.only_in_server |= result.only_in_server
        merged.only_in_client |= result.only_in_client
        merged.symbols += result.symbols
        merged.bytes_received += result.bytes_received
        merged.bytes_sent += result.bytes_sent
        merged.pushed += result.pushed
        merged.per_shard.extend(result.per_shard)
        if result.payloads is not None:
            any_payloads = True
            payloads.update(result.payloads)
    merged.per_shard.sort(key=lambda shard: shard.shard)
    merged.payloads = payloads if any_payloads else None
    return merged
