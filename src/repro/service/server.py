"""The asyncio reconciliation server: many peers, one warm stream each.

One :class:`ReconciliationServer` owns a sharded set and serves any
number of concurrent sessions over TCP.  Protocol logic — handshake
validation, stream production with slow-start ramping, sketch RETRY
doubling, symbol budgets with their grace window, PUSH/BYE/STATS — is
*not* implemented here: each session is a
:class:`~repro.protocol.ResponderMachine` (the same sans-io machine the
in-memory pump and the simulated link drive), and this module is only
the asyncio shell that shuttles socket bytes in, machine frames out,
and ``tick``s production while the writer drains — backpressure is the
socket itself: a slow client suspends ``drain()`` and with it that
session's production, costing the server nothing beyond the OS buffer.

Runaway sessions are dropped, not tolerated: a shard that exceeds
``max_symbols_per_shard`` without the client reporting decode fails the
machine with the typed :class:`~repro.api.SymbolBudgetExceeded`, which
reaches the client as an ``ERROR`` frame (so it fails with the same
typed exception).  Mutating the served set mid-session similarly
surfaces as a typed :class:`~repro.service.backends.StaleStream` /
``ERROR`` rather than a stream that silently stopped making sense.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Iterable, Optional

import repro.protocol.machine as protocol_machine
from repro.api.registry import Scheme, get_scheme
from repro.protocol.events import ClusterInfo
from repro.core.symbols import SymbolCodec
from repro.service.backends import ShardBackend, make_backend
from repro.service.framing import (
    MAX_FRAME_BYTES,
    ErrorCode,
    FrameError,
    FrameType,
    encode_frame,
    pack_busy_body,
)
from repro.service.defaults import DEFAULT_BUSY_RETRY_AFTER, with_service_hasher
from repro.service.shard import ShardedSet, key_probe

# Sketch-mode bound when the client's HELLO leaves it to the server
# (canonically repro.protocol.machine.DEFAULT_SKETCH_BOUND).
DEFAULT_SKETCH_BOUND = 16

_READ_CHUNK = 1 << 16


@dataclass
class ServerConfig:
    """Service knobs (all enforceable per deployment, not negotiated up)."""

    block_size: int = 64
    """Coded symbols per SYMBOLS frame (stream mode)."""

    max_symbols_per_shard: Optional[int] = 1 << 17
    """Per-session, per-shard symbol budget; ``None`` disables the cap."""

    budget_grace: float = 1.0
    """Seconds a budget-exhausted shard waits for the client's
    SHARD_DONE (covering symbols already in flight) before the session
    is declared runaway and dropped."""

    max_sketch_bound: int = 1 << 16
    """Largest sketch capacity a RETRY may request (sketch mode)."""

    max_frame: int = MAX_FRAME_BYTES
    """Inbound frame size cap."""

    max_sessions: Optional[int] = None
    """Finish after this many sessions (CLI/testing); ``None`` = forever."""

    idle_timeout: Optional[float] = 60.0
    """Seconds of session silence (no client bytes, no write progress)
    before the server sends a typed ``ErrorCode.IDLE`` frame and drops
    the session — a stalled client must not hold its session state,
    budget grace, and backpressure bookkeeping forever.  ``None``
    disables the deadline."""

    max_concurrent_sessions: Optional[int] = None
    """Admission cap on *live* sessions.  A connection arriving past it
    is answered immediately with a typed ``ErrorCode.BUSY`` frame (the
    retry-after hint included) and shed — never silently queued behind
    sessions it cannot see.  ``None`` admits everything."""

    per_peer_rate: Optional[float] = None
    """Admissions per second allowed per peer host (token bucket,
    ``per_peer_burst`` capacity).  A peer dialling faster is shed with
    ``BUSY`` exactly like a session-cap overflow.  ``None`` disables
    peer rate limiting."""

    per_peer_burst: int = 8
    """Token-bucket capacity per peer host: how many connections one
    peer may open back-to-back before ``per_peer_rate`` throttles it."""

    max_session_bytes: Optional[int] = None
    """Per-session bound on coded bytes served.  A session crossing it
    mid-stream is shed with ``BUSY`` (the work is real, the client may
    retry later) so one enormous diff cannot monopolise the server's
    memory and cycles.  ``None`` disables the bound."""

    busy_retry_after: float = DEFAULT_BUSY_RETRY_AFTER
    """Retry-after hint (seconds) stamped into every ``BUSY`` frame."""


@dataclass
class ServerStats:
    """Counters across the server's lifetime (observability)."""

    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_dropped: int = 0
    sessions_shed: int = 0
    """Connections answered with a typed ``BUSY``: refused at admission
    (those never count in ``sessions_started``) or cut mid-session by
    the ``max_session_bytes`` bound (those do — they were admitted)."""
    shed_reasons: dict = field(default_factory=dict)
    """Shed counts keyed by reason string (``"session limit"``,
    ``"peer rate limit"``, ``"session bytes"``)."""
    symbols_sent: int = 0
    bytes_sent: int = 0
    items_pushed: int = 0
    errors_sent: dict = field(default_factory=dict)

    def count_error(self, code: ErrorCode) -> None:
        self.errors_sent[int(code)] = self.errors_sent.get(int(code), 0) + 1

    def count_shed(self, reason: str) -> None:
        self.sessions_shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1


class ReconciliationServer:
    """Serve reconciliation sessions for one (sharded) set.

    ``params`` go to the scheme's parameter dataclass exactly as in
    :func:`repro.api.reconcile`, except that the keyed checksum hash
    defaults to SipHash at the service layer (pass ``hasher="blake2b"``
    to override; see :mod:`repro.service.defaults`); ``symbol_size`` is
    inferred from the first item when omitted.  Alternatively pass an existing
    ``backend``: the server then hosts that backend's (live, warm)
    shard state directly — the gossip layer uses this to expose a
    :class:`~repro.gossip.GossipNode`'s set over TCP without copying or
    re-encoding it — and ``items``/``scheme``/``num_shards``/``params``
    must be left at their defaults.

    ``data_dir`` makes the served state durable (:mod:`repro.durable`):
    a fresh directory is initialised from ``items`` and checkpointed
    before serving; an existing one is *recovered* — snapshots parsed,
    churn journal replayed — so the server comes back warm without
    re-ingesting anything (``items`` may then be omitted, and the
    stored shard count and codec parameters are adopted).  ``durable``
    takes a :class:`~repro.durable.DurableConfig`; the server owns the
    store and closes it in :meth:`close`.
    """

    def __init__(
        self,
        items: Iterable[bytes] = (),
        *,
        scheme: str = "riblt",
        num_shards: int = 1,
        config: Optional[ServerConfig] = None,
        backend: Optional[ShardBackend] = None,
        data_dir: Optional[object] = None,
        durable: Optional[object] = None,
        **params: object,
    ) -> None:
        self._owns_store = False
        if data_dir is not None:
            if backend is not None:
                raise ValueError("data_dir= and backend= are exclusive")
            from pathlib import Path

            from repro.durable import open_durable
            from repro.durable.store import MANIFEST_NAME

            if not (Path(data_dir) / MANIFEST_NAME).exists():
                # Fresh store: the service hasher default applies.  An
                # existing store keeps whatever its manifest recorded
                # (injecting a default there would falsely claim the
                # caller asserted it).
                params = with_service_hasher(scheme, params)
            materialised = list(items)
            backend = open_durable(
                data_dir,
                materialised,
                scheme=scheme,
                num_shards=num_shards if materialised else 0,
                config=durable,
                **params,
            )
            self._owns_store = True
            handle = backend.handle
        elif backend is not None:
            materialised = list(items)
            if materialised or num_shards != 1 or params or scheme != "riblt":
                raise ValueError(
                    "backend= is exclusive: the backend already fixes the "
                    "items, scheme, shard count, and parameters"
                )
            handle = backend.handle
        else:
            materialised = list(items)
            handle = get_scheme(scheme, **with_service_hasher(scheme, params))
            if handle.params.symbol_size is None:
                if not materialised:
                    raise ValueError(
                        "serving an empty set needs an explicit symbol_size"
                    )
                handle = handle.with_params(symbol_size=len(materialised[0]))
        self.handle: Scheme = handle
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.codec: Optional[SymbolCodec] = _codec_of(handle)
        hash64 = _hash64_of(handle, self.codec)
        self.key_probe = key_probe(hash64)
        if backend is None:
            sharded = ShardedSet(hash64, num_shards, materialised)
            backend = make_backend(handle, sharded, self.codec)
        self.backend: ShardBackend = backend
        self.cluster: Optional[ClusterInfo] = None
        """Set by a cluster worker before ``start``: stamps every
        session's WELCOME with the pool's routing tail."""
        self._server: Optional[asyncio.base_events.Server] = None
        self._extra_servers: list[asyncio.base_events.Server] = []
        self._session_tasks: set[asyncio.Task] = set()
        self._sessions_finished = 0
        self._active_sessions = 0
        self._peer_buckets: dict = {}
        self._finished = asyncio.Event()

    # -- the served set ---------------------------------------------------

    def add_item(self, item: bytes) -> None:
        """Add an item; warm shard encoders are patched, not rebuilt."""
        self.backend.add(item)

    def remove_item(self, item: bytes) -> None:
        """Remove an item; warm shard encoders are patched, not rebuilt."""
        self.backend.remove(item)

    def add_items(self, items: Iterable[bytes]) -> None:
        """Add a batch: per shard, one fused warm-bank patch and one
        stream invalidation (instead of one of each per item)."""
        self.backend.add_many(items)

    def remove_items(self, items: Iterable[bytes]) -> None:
        """Remove a batch; the warm shard encoders are patched per shard."""
        self.backend.remove_many(items)

    def checkpoint(self) -> None:
        """Force a durable snapshot now (``data_dir`` servers only)."""
        if not self._owns_store:
            raise RuntimeError("checkpoint() needs a data_dir-backed server")
        self.backend.checkpoint()  # type: ignore[attr-defined]

    def __contains__(self, item: bytes) -> bool:
        return item in self.backend.sharded

    def __len__(self) -> int:
        return len(self.backend.sharded)

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    # -- lifecycle --------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
    ) -> tuple[str, int]:
        """Bind and accept; returns the actual ``(host, port)``.

        ``reuse_port`` binds with ``SO_REUSEPORT`` so N worker processes
        can share one port, the kernel load-balancing accepts between
        them (raises on platforms without it).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        kwargs = {"reuse_port": True} if reuse_port else {}
        self._server = await asyncio.start_server(
            self._on_connection, host, port, **kwargs
        )
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        self._address = (sock_host, sock_port)
        return self._address

    async def listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
    ) -> tuple[str, int]:
        """Accept sessions on an additional address (cluster entry port)."""
        kwargs = {"reuse_port": True} if reuse_port else {}
        extra = await asyncio.start_server(
            self._on_connection, host, port, **kwargs
        )
        self._extra_servers.append(extra)
        return extra.sockets[0].getsockname()[:2]

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def port(self) -> int:
        return self.address[1]

    async def wait_finished(self) -> None:
        """Block until ``config.max_sessions`` sessions have finished
        (forever when unset — cancel or :meth:`close` to stop)."""
        await self._finished.wait()

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, let live sessions finish.

        Sessions still running after ``timeout`` seconds are cancelled
        by the :meth:`close` this always ends with.
        """
        if self._server is not None:
            self._server.close()
        for extra in self._extra_servers:
            extra.close()
        pending = {task for task in self._session_tasks if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=timeout)
        await self.close()

    async def close(self) -> None:
        """Stop accepting, cancel live sessions, release the socket."""
        if self._server is not None:
            self._server.close()
        for extra in self._extra_servers:
            extra.close()
        for task in list(self._session_tasks):
            task.cancel()
        for task in list(self._session_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            await self._server.wait_closed()
        for extra in self._extra_servers:
            await extra.wait_closed()
        self._extra_servers.clear()
        if self._owns_store:
            self.backend.close()  # type: ignore[attr-defined]
            self._owns_store = False
        self._finished.set()

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- admission --------------------------------------------------------

    _MAX_PEER_BUCKETS = 1024

    def _admission_reason(self, writer: asyncio.StreamWriter) -> Optional[str]:
        """Why this connection must be shed (``None`` = admit it)."""
        config = self.config
        cap = config.max_concurrent_sessions
        if cap is not None and self._active_sessions >= cap:
            return "session limit"
        if config.per_peer_rate is not None:
            peername = writer.get_extra_info("peername")
            host = peername[0] if peername else "<unknown>"
            if not self._take_peer_token(host):
                return "peer rate limit"
        return None

    def _take_peer_token(self, host: str) -> bool:
        """One admission token from ``host``'s bucket (refill-on-read)."""
        rate = self.config.per_peer_rate or 0.0
        burst = float(max(1, self.config.per_peer_burst))
        now = asyncio.get_running_loop().time()
        tokens, stamp = self._peer_buckets.get(host, (burst, now))
        tokens = min(burst, tokens + (now - stamp) * rate)
        granted = tokens >= 1.0
        self._peer_buckets[host] = (tokens - 1.0 if granted else tokens, now)
        if len(self._peer_buckets) > self._MAX_PEER_BUCKETS:
            # A bucket refilled to capacity carries no state worth
            # keeping; drop those so hostile peer churn cannot grow the
            # table without bound.
            for peer, (held, seen) in list(self._peer_buckets.items()):
                if min(burst, held + (now - seen) * rate) >= burst:
                    del self._peer_buckets[peer]
        return granted

    async def _shed(self, writer: asyncio.StreamWriter, reason: str) -> None:
        """Answer an over-limit connection with ``BUSY`` and drop it.

        No machine, no session state: the BUSY frame is written
        immediately — the client pipelines its HELLO, so this *is* the
        HELLO's answer, in bounded time — then the connection closes.
        Every write is guarded: a peer that vanished first changes
        nothing.
        """
        self.stats.count_shed(reason)
        self.stats.count_error(ErrorCode.BUSY)
        frame = encode_frame(
            FrameType.ERROR,
            pack_busy_body(
                self.config.busy_retry_after, f"server busy: {reason}"
            ),
        )
        try:
            writer.write(frame)
            await asyncio.wait_for(writer.drain(), timeout=5.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass

    # -- sessions ---------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._session_tasks.add(task)
        cancelled = False
        try:
            reason = self._admission_reason(writer)
            if reason is not None:
                await self._shed(writer, reason)
                return
            await self._run_admitted(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown.  Absorb the cancellation: a handler task
            # that *ends* cancelled trips asyncio.streams' internal
            # done-callback into logging a spurious traceback.  An
            # admitted session's own finally already accounted it.
            cancelled = True
        finally:
            self._session_tasks.discard(task)
            writer.close()
            if not cancelled:
                try:
                    await writer.wait_closed()
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass

    async def _run_admitted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.sessions_started += 1
        self._active_sessions += 1
        session = _Session(self, reader, writer)
        try:
            await session.run()
        except (FrameError, ConnectionError, OSError):
            pass  # accounted (as dropped) by the session's finally
        finally:
            self._active_sessions -= 1
            self._sessions_finished += 1
            maximum = self.config.max_sessions
            if maximum is not None and self._sessions_finished >= maximum:
                if self._server is not None:
                    self._server.close()
                self._finished.set()


class _Session:
    """One client connection: an asyncio pump around a responder machine."""

    def __init__(
        self,
        server: ReconciliationServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self._accounted = False
        config = server.config
        self.machine = protocol_machine.ResponderMachine(
            server.backend,
            server.handle,
            block_size=config.block_size,
            max_symbols_per_shard=config.max_symbols_per_shard,
            budget_grace=config.budget_grace,
            max_sketch_bound=config.max_sketch_bound,
            max_frame=config.max_frame,
            cluster=server.cluster,
        )

    async def run(self) -> None:
        machine = self.machine
        machine.start()
        loop = asyncio.get_running_loop()
        idle = self.server.config.idle_timeout
        # Progress = client bytes arriving, or our writes draining.  A
        # session making either kind never expires; one making neither
        # is a stalled client squatting on session state.
        last_progress = loop.time()
        read_task: asyncio.Task = asyncio.ensure_future(
            self.reader.read(_READ_CHUNK)
        )
        byte_cap = self.server.config.max_session_bytes
        try:
            while not machine.finished:
                if byte_cap is not None and machine.bytes_sent >= byte_cap:
                    # The bound lives in the shell, not the machine: the
                    # machine cannot know the deployment's memory story.
                    # shed() queues the typed BUSY frame; the flush
                    # below delivers it.
                    self.server.stats.count_shed("session bytes")
                    machine.shed(
                        self.server.config.busy_retry_after,
                        f"session exceeded {byte_cap} served bytes",
                    )
                out = machine.take_output()
                if out:
                    self.writer.write(out)
                    if idle is None:
                        await self.writer.drain()
                    else:
                        remaining = last_progress + idle - loop.time()
                        try:
                            if remaining <= 0:
                                raise asyncio.TimeoutError
                            await asyncio.wait_for(
                                self.writer.drain(), timeout=remaining
                            )
                        except asyncio.TimeoutError:
                            # Client stopped reading: declare the
                            # deadline blown; the machine queues a typed
                            # ERROR frame, flushed best-effort below.
                            machine.deadline_expired()
                            continue
                    last_progress = loop.time()
                if machine.finished:
                    break
                if read_task.done():
                    data = read_task.result()  # re-raises connection errors
                    if not data:
                        machine.peer_closed()
                        continue
                    machine.bytes_received(data)
                    last_progress = loop.time()
                    read_task = asyncio.ensure_future(
                        self.reader.read(_READ_CHUNK)
                    )
                    continue
                if machine.wants_tick:
                    machine.tick(loop.time())
                    # Production is synchronous CPU work; yield so
                    # concurrent sessions interleave even when the
                    # socket buffer never fills.
                    await asyncio.sleep(0)
                    continue
                delay = machine.next_tick_delay(loop.time())
                timeout = delay
                if idle is not None:
                    idle_remaining = last_progress + idle - loop.time()
                    if idle_remaining <= 0:
                        machine.deadline_expired()
                        continue
                    timeout = (
                        idle_remaining
                        if timeout is None
                        else min(timeout, idle_remaining)
                    )
                await asyncio.wait(
                    {read_task},
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done() and delay is not None:
                    machine.tick(loop.time())
            out = machine.take_output()
            if out:
                # Bounded AND guarded: a client that stopped reading
                # must not pin the session in teardown forever, and one
                # that reset the connection mid-drain (the chaos proxy
                # manufactures exactly this) must surface here — as a
                # finished session whose final frame was lost — not as
                # an unhandled ConnectionResetError in the event loop.
                try:
                    self.writer.write(out)
                    await asyncio.wait_for(self.writer.drain(), timeout=5.0)
                except (asyncio.TimeoutError, ConnectionError, OSError):
                    pass
        finally:
            self._account()
            if not read_task.done():
                read_task.cancel()
            try:
                await read_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    def _account(self) -> None:
        """Fold this session into the server stats (exactly once).

        Runs in ``run``'s ``finally`` so sessions torn down by
        connection errors or server shutdown still report their
        symbols/bytes/error codes, like the legacy server did.
        """
        if self._accounted:
            return
        self._accounted = True
        machine = self.machine
        stats = self.server.stats
        if machine.complete:
            stats.sessions_completed += 1
        else:
            stats.sessions_dropped += 1
        stats.symbols_sent += machine.symbols_sent
        stats.bytes_sent += machine.bytes_sent
        stats.items_pushed += machine.pushes_applied
        for code in machine.error_codes:
            stats.count_error(code)


def _codec_of(handle: Scheme) -> Optional[SymbolCodec]:
    """The scheme's SymbolCodec when its params describe one."""
    return protocol_machine.codec_of(handle)


def _hash64_of(handle: Scheme, codec: Optional[SymbolCodec]):
    """The keyed 64-bit hash both peers share, for shard placement."""
    return protocol_machine.hash64_of(handle, codec)
