"""The asyncio reconciliation server: many peers, one warm stream each.

One :class:`ReconciliationServer` owns a sharded set and serves any
number of concurrent sessions over TCP.  Per session and shard the
server runs a *producer* task that pulls §6-framed blocks from the shard
backend and a single *writer* task that multiplexes every shard's frames
onto the socket through a bounded :class:`asyncio.Queue` — the queue is
the backpressure: a slow client blocks its own producers at
``queue_frames × block_size`` symbols of lookahead and costs the server
nothing beyond that.

Runaway sessions are dropped, not tolerated: a shard that exceeds
``max_symbols_per_shard`` without the client reporting decode raises the
typed :class:`~repro.api.SymbolBudgetExceeded` inside the producer; the
session manager converts it into an ``ERROR`` frame (so the client fails
with the same typed exception) and tears the session down.  Mutating the
served set mid-session similarly surfaces as a typed
:class:`~repro.service.backends.StaleStream` / ``ERROR`` rather than a
stream that silently stopped making sense.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.api.base import SymbolBudgetExceeded
from repro.api.registry import Scheme, get_scheme
from repro.core.symbols import SymbolCodec
from repro.service.backends import ShardBackend, StaleStream, make_backend
from repro.service.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BodyReader,
    ErrorCode,
    FrameError,
    FrameType,
    SyncMode,
    encode_frame,
    pack_uvarints,
    read_frame,
    write_frame,
)
from repro.service.shard import ShardedSet, key_probe

# Sketch-mode bound when the client's HELLO leaves it to the server.
DEFAULT_SKETCH_BOUND = 16


@dataclass
class ServerConfig:
    """Service knobs (all enforceable per deployment, not negotiated up)."""

    block_size: int = 64
    """Coded symbols per SYMBOLS frame (stream mode)."""

    queue_frames: int = 8
    """Outbound frames buffered per session before producers block."""

    max_symbols_per_shard: Optional[int] = 1 << 17
    """Per-session, per-shard symbol budget; ``None`` disables the cap."""

    budget_grace: float = 1.0
    """Seconds a budget-exhausted shard waits for the client's
    SHARD_DONE (covering symbols already in flight) before the session
    is declared runaway and dropped."""

    max_sketch_bound: int = 1 << 16
    """Largest sketch capacity a RETRY may request (sketch mode)."""

    max_frame: int = MAX_FRAME_BYTES
    """Inbound frame size cap."""

    max_sessions: Optional[int] = None
    """Finish after this many sessions (CLI/testing); ``None`` = forever."""


@dataclass
class ServerStats:
    """Counters across the server's lifetime (observability)."""

    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_dropped: int = 0
    symbols_sent: int = 0
    bytes_sent: int = 0
    items_pushed: int = 0
    errors_sent: dict = field(default_factory=dict)

    def count_error(self, code: ErrorCode) -> None:
        self.errors_sent[int(code)] = self.errors_sent.get(int(code), 0) + 1


class ReconciliationServer:
    """Serve reconciliation sessions for one (sharded) set.

    ``params`` go to the scheme's parameter dataclass exactly as in
    :func:`repro.api.reconcile`; ``symbol_size`` is inferred from the
    first item when omitted.
    """

    def __init__(
        self,
        items: Iterable[bytes] = (),
        *,
        scheme: str = "riblt",
        num_shards: int = 1,
        config: Optional[ServerConfig] = None,
        **params: object,
    ) -> None:
        materialised = list(items)
        handle = get_scheme(scheme, **params)
        if handle.params.symbol_size is None:
            if not materialised:
                raise ValueError(
                    "serving an empty set needs an explicit symbol_size"
                )
            handle = handle.with_params(symbol_size=len(materialised[0]))
        self.handle: Scheme = handle
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.codec: Optional[SymbolCodec] = _codec_of(handle)
        hash64 = _hash64_of(handle, self.codec)
        self.key_probe = key_probe(hash64)
        sharded = ShardedSet(hash64, num_shards, materialised)
        self.backend: ShardBackend = make_backend(handle, sharded, self.codec)
        self._server: Optional[asyncio.base_events.Server] = None
        self._session_tasks: set[asyncio.Task] = set()
        self._sessions_finished = 0
        self._finished = asyncio.Event()

    # -- the served set ---------------------------------------------------

    def add_item(self, item: bytes) -> None:
        """Add an item; warm shard encoders are patched, not rebuilt."""
        self.backend.add(item)

    def remove_item(self, item: bytes) -> None:
        """Remove an item; warm shard encoders are patched, not rebuilt."""
        self.backend.remove(item)

    def __contains__(self, item: bytes) -> bool:
        return item in self.backend.sharded

    def __len__(self) -> int:
        return len(self.backend.sharded)

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    # -- lifecycle --------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and accept; returns the actual ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._on_connection, host, port)
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        self._address = (sock_host, sock_port)
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def port(self) -> int:
        return self.address[1]

    async def wait_finished(self) -> None:
        """Block until ``config.max_sessions`` sessions have finished
        (forever when unset — cancel or :meth:`close` to stop)."""
        await self._finished.wait()

    async def close(self) -> None:
        """Stop accepting, cancel live sessions, release the socket."""
        if self._server is not None:
            self._server.close()
        for task in list(self._session_tasks):
            task.cancel()
        for task in list(self._session_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            await self._server.wait_closed()
        self._finished.set()

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- sessions ---------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._session_tasks.add(task)
        self.stats.sessions_started += 1
        session = _Session(self, reader, writer)
        cancelled = False
        try:
            await session.run()
        except asyncio.CancelledError:
            # Server shutdown.  Absorb the cancellation: a handler task
            # that *ends* cancelled trips asyncio.streams' internal
            # done-callback into logging a spurious traceback.
            cancelled = True
            self.stats.sessions_dropped += 1
        except (FrameError, ConnectionError, OSError):
            self.stats.sessions_dropped += 1
        finally:
            self._session_tasks.discard(task)
            writer.close()
            if not cancelled:
                try:
                    await writer.wait_closed()
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
            self._sessions_finished += 1
            maximum = self.config.max_sessions
            if maximum is not None and self._sessions_finished >= maximum:
                if self._server is not None:
                    self._server.close()
                self._finished.set()


class _Session:
    """One client connection: handshake, then stream or sketch mode."""

    def __init__(
        self,
        server: ReconciliationServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.config = server.config
        self.backend = server.backend
        self.symbols_sent = 0
        self.bytes_sent = 0
        self.pushes_applied = 0
        self._outq: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_frames)
        self._done_events = [asyncio.Event() for _ in range(server.num_shards)]
        self._abort = asyncio.Event()
        self._failed = False

    # -- handshake --------------------------------------------------------

    async def run(self) -> None:
        frame = await read_frame(self.reader, self.config.max_frame)
        if frame is None:
            self.server.stats.sessions_dropped += 1
            return
        ftype, body = frame
        if ftype != FrameType.HELLO:
            await self._send_error(
                ErrorCode.PROTOCOL, f"expected HELLO, got frame type {ftype:#x}"
            )
            self.server.stats.sessions_dropped += 1
            return
        if not await self._check_hello(BodyReader(body)):
            self.server.stats.sessions_dropped += 1
            return
        mode = self.backend.mode
        await write_frame(
            self.writer,
            FrameType.WELCOME,
            pack_uvarints(
                PROTOCOL_VERSION,
                int(mode),
                self.server.num_shards,
                self.config.block_size,
            ),
        )
        if mode == SyncMode.STREAM:
            completed = await self._run_stream()
        else:
            completed = await self._run_sketch()
        stats = self.server.stats
        if completed:
            stats.sessions_completed += 1
        else:
            stats.sessions_dropped += 1
        stats.symbols_sent += self.symbols_sent
        stats.bytes_sent += self.bytes_sent
        stats.items_pushed += self.pushes_applied

    async def _check_hello(self, body: BodyReader) -> bool:
        version = body.uvarint()
        scheme = body.lp_str()
        symbol_size = body.uvarint()
        checksum_size = body.uvarint()
        hasher = body.lp_str()
        probe = body.uvarint()
        num_shards = body.uvarint()
        body.uvarint()  # block_size wish: informational, server decides
        self.sketch_bound = body.uvarint() or DEFAULT_SKETCH_BOUND
        body.expect_end()
        server = self.server
        if version != PROTOCOL_VERSION:
            return await self._reject(
                ErrorCode.PROTOCOL,
                f"protocol version {version} unsupported (server: {PROTOCOL_VERSION})",
            )
        if scheme != server.handle.name:
            return await self._reject(
                ErrorCode.MISMATCH,
                f"scheme mismatch: client {scheme!r}, server {server.handle.name!r}",
            )
        expected_symbol = server.handle.params.symbol_size
        if symbol_size != expected_symbol:
            return await self._reject(
                ErrorCode.MISMATCH,
                f"symbol_size mismatch: client {symbol_size}, server {expected_symbol}",
            )
        codec = server.codec
        if codec is not None and checksum_size != codec.checksum_size:
            return await self._reject(
                ErrorCode.MISMATCH,
                f"checksum_size mismatch: client {checksum_size}, "
                f"server {codec.checksum_size}",
            )
        expected_hasher = getattr(server.handle.params, "hasher", "")
        if hasher and expected_hasher and hasher != expected_hasher:
            return await self._reject(
                ErrorCode.MISMATCH,
                f"hasher mismatch: client {hasher!r}, server {expected_hasher!r}",
            )
        if probe != server.key_probe:
            return await self._reject(
                ErrorCode.MISMATCH,
                "hash key probe mismatch: peers hold different keys",
            )
        if num_shards and num_shards != server.num_shards:
            return await self._reject(
                ErrorCode.MISMATCH,
                f"shard count mismatch: client expects {num_shards}, "
                f"server runs {server.num_shards}",
            )
        return True

    async def _reject(self, code: ErrorCode, message: str) -> bool:
        await self._send_error(code, message)
        return False

    async def _send_error(self, code: ErrorCode, message: str) -> None:
        self.server.stats.count_error(code)
        try:
            await write_frame(
                self.writer,
                FrameType.ERROR,
                pack_uvarints(int(code)) + message.encode("utf-8"),
            )
        except (ConnectionError, OSError):
            pass

    # -- stream mode ------------------------------------------------------

    async def _run_stream(self) -> bool:
        tasks = [
            asyncio.create_task(self._produce(shard))
            for shard in range(self.server.num_shards)
        ]
        writer_task = asyncio.create_task(self._write_loop())
        completed = False
        try:
            completed = await self._read_loop()
        finally:
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            # Flush what was queued (STATS / ERROR included).  Both waits
            # are bounded: a client that stopped reading must not pin the
            # session in teardown forever.
            try:
                await asyncio.wait_for(self._outq.put(None), timeout=5.0)
            except asyncio.TimeoutError:
                pass
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                completed = False
                writer_task.cancel()
                try:
                    await writer_task
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
        return completed and not self._failed

    async def _produce(self, shard: int) -> None:
        config = self.config
        budget = config.max_symbols_per_shard
        done = self._done_events[shard]
        # Slow start: small differences decode within a handful of cells,
        # so early blocks are small and double up to block_size — the
        # bounded look-ahead (queue_frames × block_size) then costs little
        # on easy syncs without hurting bulk throughput.
        ramp = min(8, config.block_size)
        try:
            cursor = self.backend.open_stream(shard)
            while not done.is_set():
                cells = ramp
                ramp = min(ramp * 2, config.block_size)
                if budget is not None:
                    cells = min(cells, budget - cursor.symbols_sent)
                    if cells <= 0:
                        # Budget spent; symbols are still in flight, so
                        # give the client one grace period to report
                        # decode before declaring the session runaway.
                        try:
                            await asyncio.wait_for(
                                done.wait(), timeout=config.budget_grace
                            )
                        except asyncio.TimeoutError:
                            raise SymbolBudgetExceeded(
                                f"shard {shard}: {cursor.symbols_sent} symbols "
                                f"served without decode (budget {budget})",
                                symbols_sent=cursor.symbols_sent,
                                max_symbols=budget,
                            ) from None
                        return
                payload = cursor.next_block(cells)
                self.symbols_sent += cells
                await self._outq.put(
                    encode_frame(FrameType.SYMBOLS, pack_uvarints(shard) + payload)
                )
                # Production is synchronous CPU work; yield so concurrent
                # sessions interleave even when the queue never fills.
                await asyncio.sleep(0)
        except SymbolBudgetExceeded as exc:
            await self._fail(ErrorCode.BUDGET, str(exc))
        except StaleStream as exc:
            await self._fail(ErrorCode.STALE, str(exc))

    async def _fail(self, code: ErrorCode, message: str) -> None:
        if self._failed:
            return
        self._failed = True
        self.server.stats.count_error(code)
        await self._outq.put(
            encode_frame(
                FrameType.ERROR, pack_uvarints(int(code)) + message.encode("utf-8")
            )
        )
        self._abort.set()

    async def _write_loop(self) -> None:
        while True:
            frame = await self._outq.get()
            if frame is None:
                return
            self.bytes_sent += len(frame)
            self.writer.write(frame)
            await self.writer.drain()

    async def _read_loop(self) -> bool:
        """Handle client frames until BYE/abort; True on graceful BYE."""
        while True:
            read_task = asyncio.create_task(
                read_frame(self.reader, self.config.max_frame)
            )
            abort_task = asyncio.create_task(self._abort.wait())
            try:
                await asyncio.wait(
                    {read_task, abort_task}, return_when=asyncio.FIRST_COMPLETED
                )
            except BaseException:
                # Session task cancelled (server shutdown): reap both
                # helpers so neither leaks an unretrieved exception.
                for task in (read_task, abort_task):
                    task.cancel()
                    try:
                        await task
                    except (
                        asyncio.CancelledError,
                        FrameError,
                        ConnectionError,
                        OSError,
                    ):
                        pass
                raise
            abort_task.cancel()
            if not read_task.done():
                read_task.cancel()  # a producer aborted the session
            try:
                frame = await read_task
            except asyncio.CancelledError:
                return False
            except (FrameError, ConnectionError, OSError):
                return False  # client vanished mid-frame
            if frame is None:
                return False  # client left without BYE
            if not await self._handle_client_frame(*frame):
                return not self._failed

    async def _handle_client_frame(self, ftype: int, body: bytes) -> bool:
        """Dispatch one client frame; False ends the read loop."""
        reader = BodyReader(body)
        if ftype == FrameType.SHARD_DONE:
            shard = reader.uvarint()
            reader.expect_end()
            if shard >= self.server.num_shards:
                await self._fail(ErrorCode.PROTOCOL, f"no such shard {shard}")
                return False
            self._done_events[shard].set()
            return True
        if ftype == FrameType.PUSH:
            self._apply_push(reader)
            return True
        if ftype == FrameType.RETRY:
            # RETRY is a sketch-mode frame; in stream mode the backend
            # has no sketches to rebuild, so it is a protocol violation.
            await self._fail(ErrorCode.PROTOCOL, "RETRY is invalid in stream mode")
            return False
        if ftype == FrameType.BYE:
            await self._outq.put(
                encode_frame(
                    FrameType.STATS,
                    pack_uvarints(
                        self.symbols_sent, self.bytes_sent, self.pushes_applied
                    ),
                )
            )
            return False
        await self._fail(
            ErrorCode.PROTOCOL, f"unexpected frame type {ftype:#x} from client"
        )
        return False

    def _apply_push(self, reader: BodyReader) -> None:
        reader.uvarint()  # shard hint; placement is re-derived server-side
        count = reader.uvarint()
        symbol_size = self.server.handle.params.symbol_size
        assert symbol_size is not None
        for _ in range(count):
            item = reader.raw(symbol_size)
            try:
                self.backend.add(item)
            except KeyError:
                continue  # another session already pushed it
            self.pushes_applied += 1
        reader.expect_end()

    # -- sketch mode ------------------------------------------------------

    async def _run_sketch(self) -> bool:
        for shard in range(self.server.num_shards):
            await self._send_sketch(shard, self.sketch_bound)
        while True:
            try:
                frame = await read_frame(self.reader, self.config.max_frame)
            except (FrameError, ConnectionError, OSError):
                return False
            if frame is None:
                return False
            ftype, body = frame
            reader = BodyReader(body)
            if ftype == FrameType.RETRY:
                if not await self._handle_retry(reader):
                    return False
            elif ftype == FrameType.SHARD_DONE:
                continue  # bookkeeping only; nothing streams in sketch mode
            elif ftype == FrameType.PUSH:
                self._apply_push(reader)
            elif ftype == FrameType.BYE:
                await write_frame(
                    self.writer,
                    FrameType.STATS,
                    pack_uvarints(
                        self.symbols_sent, self.bytes_sent, self.pushes_applied
                    ),
                )
                return True
            else:
                await self._send_error(
                    ErrorCode.PROTOCOL, f"unexpected frame type {ftype:#x}"
                )
                return False

    async def _handle_retry(self, reader: BodyReader) -> bool:
        shard = reader.uvarint()
        bound = reader.uvarint()
        reader.expect_end()
        if shard >= self.server.num_shards:
            await self._send_error(ErrorCode.PROTOCOL, f"no such shard {shard}")
            return False
        if bound > self.config.max_sketch_bound:
            self._failed = True
            await self._send_error(
                ErrorCode.BUDGET,
                f"shard {shard}: sketch bound {bound} exceeds server cap "
                f"{self.config.max_sketch_bound}",
            )
            return False
        await self._send_sketch(shard, bound)
        return True

    async def _send_sketch(self, shard: int, bound: int) -> None:
        blob = self.backend.build_sketch(shard, bound)
        frame_body = pack_uvarints(shard, bound) + blob
        self.bytes_sent += len(blob)
        await write_frame(self.writer, FrameType.SKETCH, frame_body)


def _codec_of(handle: Scheme) -> Optional[SymbolCodec]:
    """The scheme's SymbolCodec when its params describe one."""
    params = handle.params
    if hasattr(params, "checksum_size") and hasattr(params, "hasher"):
        from repro.api.adapters.cellpack import codec_for

        return codec_for(params)  # type: ignore[arg-type]
    return None


def _hash64_of(handle: Scheme, codec: Optional[SymbolCodec]):
    """The keyed 64-bit hash both peers share, for shard placement."""
    if codec is not None:
        return codec.hasher.hash64
    from repro.hashing.keyed import Blake2bHasher

    return Blake2bHasher().hash64
