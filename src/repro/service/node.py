""":class:`ServiceNode`: one peer's set, servable and syncable.

The node is the deployment-shaped wrapper: it owns a set of items,
can expose it (:meth:`ServiceNode.start`), can reconcile it against
another node's server (:meth:`ServiceNode.sync_with`), and keeps both
faces consistent — items learned from a sync are applied to the live
server's warm shard encoders, so the next peer that connects already
sees them without any re-encoding.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.service.backends import StaleStream
from repro.service.client import SyncResult, sync
from repro.service.server import ReconciliationServer, ServerConfig


class ServiceNode:
    """A set of fixed-width items plus both service roles.

    >>> import asyncio
    >>> async def demo():
    ...     hub = ServiceNode([b"%08d" % i for i in range(100)], num_shards=4)
    ...     await hub.start()
    ...     edge = ServiceNode([b"%08d" % i for i in range(2, 102)], num_shards=4)
    ...     result = await edge.sync_with(*hub.address)
    ...     await hub.stop()
    ...     return sorted(result.only_in_server)
    >>> asyncio.run(demo())[:2]
    [b'00000000', b'00000001']
    """

    def __init__(
        self,
        items: Iterable[bytes] = (),
        *,
        scheme: str = "riblt",
        num_shards: int = 1,
        config: Optional[ServerConfig] = None,
        data_dir: Optional[object] = None,
        durable: Optional[object] = None,
        **params: object,
    ) -> None:
        self.items: set[bytes] = set(items)
        self.scheme = scheme
        self.num_shards = num_shards
        self.config = config
        self.data_dir = data_dir
        self.durable = durable
        self._server: Optional[ReconciliationServer] = None
        self.params = params

    # -- the set ----------------------------------------------------------

    def add_item(self, item: bytes) -> None:
        if item in self.items:
            raise KeyError(f"duplicate item: {item.hex()}")
        self.items.add(item)
        if self._server is not None:
            self._server.add_item(item)

    def remove_item(self, item: bytes) -> None:
        if item not in self.items:
            raise KeyError(f"item not in set: {item.hex()}")
        self.items.remove(item)
        if self._server is not None:
            self._server.remove_item(item)

    def add_items(self, items: Iterable[bytes]) -> None:
        """Add a batch of items (one warm-bank patch per touched shard)."""
        batch = items if isinstance(items, list) else list(items)
        seen: set[bytes] = set()
        for item in batch:
            if item in self.items or item in seen:
                raise KeyError(f"duplicate item: {item.hex()}")
            seen.add(item)
        self.items.update(batch)
        if self._server is not None:
            self._server.add_items(batch)

    def remove_items(self, items: Iterable[bytes]) -> None:
        """Remove a batch of items."""
        batch = items if isinstance(items, list) else list(items)
        seen: set[bytes] = set()
        for item in batch:
            if item not in self.items or item in seen:
                raise KeyError(f"item not in set: {item.hex()}")
            seen.add(item)
        self.items.difference_update(batch)
        if self._server is not None:
            self._server.remove_items(batch)

    def __contains__(self, item: bytes) -> bool:
        return item in self.items

    def __len__(self) -> int:
        return len(self.items)

    # -- server face ------------------------------------------------------

    @property
    def server(self) -> ReconciliationServer:
        if self._server is None:
            raise RuntimeError("node is not serving; call start() first")
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Expose this node's set; returns the bound ``(host, port)``.

        With ``data_dir`` the served state is durable: a warm restart
        (existing dir, no/same items) recovers the persisted shard
        banks and churn journal, and the node's in-memory set is
        refreshed from the recovered state — including journaled churn
        a crash interrupted.
        """
        if self._server is not None:
            raise RuntimeError("node is already serving")
        self._server = ReconciliationServer(
            sorted(self.items),
            scheme=self.scheme,
            num_shards=self.num_shards,
            config=self.config,
            data_dir=self.data_dir,
            durable=self.durable,
            **self.params,
        )
        if self.data_dir is not None:
            self.items = set(self._server.backend.sharded)
        return await self._server.start(host, port)

    async def stop(self) -> None:
        if self._server is not None:
            await self._server.close()
            self._server = None

    # -- client face ------------------------------------------------------

    async def sync_with(
        self,
        host: str,
        port: int,
        *,
        push: bool = False,
        apply: bool = True,
        retry_on_stale: int = 1,
        **kwargs: object,
    ) -> SyncResult:
        """Reconcile this node's set against a remote server.

        ``apply`` folds the fetched difference into the local set (and
        the live server backend, if serving); ``push`` sends the items
        the remote is missing.  A :class:`StaleStream` — the remote's
        set changed mid-stream — is retried up to ``retry_on_stale``
        times, since the reconnected stream reads the freshly patched
        warm bank.  Pass ``retry=RetryPolicy(...)`` (forwarded to
        :func:`~repro.service.client.sync`) to also survive
        connection-level failures with backoff; the two loops compose —
        reconnects happen inside each stale-stream attempt.
        """
        attempts = max(0, retry_on_stale) + 1
        for attempt in range(attempts):
            try:
                result = await sync(
                    host,
                    port,
                    sorted(self.items),
                    scheme=self.scheme,
                    num_shards=0,
                    push=push,
                    **{**self.params, **kwargs},
                )
                break
            except StaleStream:
                if attempt + 1 == attempts:
                    raise
        if apply:
            for item in result.only_in_server:
                if item not in self.items:
                    self.add_item(item)
        return result
