"""Service-layer scheme defaults.

The service defaults the keyed checksum hash to SipHash-2-4 — the
paper's own choice (§4.3), and since the batched uint64-lane engine
landed, also the fastest path through ingestion (~0.3 µs/item).  BLAKE2b
stays fully supported: pass ``hasher="blake2b"`` explicitly (the core
:class:`~repro.core.symbols.SymbolCodec` and the scheme registry keep
their historical BLAKE2b default, so recorded transcripts and durable
stores that predate this default are unaffected — an existing store's
manifest always wins over this default on recovery).
"""

from __future__ import annotations

SERVICE_HASHER = "siphash"

DEFAULT_BUSY_RETRY_AFTER = 0.5
"""Seconds a shed client is told to wait before reconnecting.

Stamped into the ``ErrorCode.BUSY`` frame whenever an overloaded server
answers a HELLO with a shed (see
:class:`~repro.service.server.ServerConfig`); long enough that a
retrying fleet does not hammer a saturated server at its own backoff
floor, short enough that a transient spike clears within one retry for
the default :class:`~repro.service.client.RetryPolicy`."""


def with_service_hasher(scheme: str, params: dict) -> dict:
    """Params with ``hasher`` defaulted to :data:`SERVICE_HASHER`.

    Applied at the service entry points (server construction, client
    :func:`~repro.service.client.sync`) — never deeper, so library users
    of the core codec and the scheme registry see no change.  A scheme
    that accepts no ``hasher`` parameter, or a caller that already chose
    one, passes through untouched.
    """
    if "hasher" in params:
        return params
    from repro.api.registry import get_scheme

    try:
        probe = get_scheme(scheme)
    except Exception:
        return params  # let the real construction raise its own error
    if not hasattr(probe.params, "hasher"):
        return params
    out = dict(params)
    out["hasher"] = SERVICE_HASHER
    return out
