"""The in-memory transport: pump two machines against each other.

This is the "transport" behind ``repro.api.reconcile`` and
``repro.api.Session``: every frame a machine emits is handed straight to
its peer, lock-step.  Lock-step matters — the responder only produces a
new block (``tick``) once the initiator has nothing left to say, so the
coded-symbol stream stops at exactly the cell that decodes, and byte
accounting matches the pre-engine in-memory drivers cell for cell.

Virtual time: the pump keeps a float clock that jumps straight to the
responder's next deadline when neither side has bytes to move, so
budget-grace expiry (a wall-clock second on a real transport) costs
nothing in memory.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api.registry import Scheme
from repro.protocol.events import MachineReport
from repro.protocol.machine import (
    InitiatorMachine,
    ReconcilerMachine,
    ResponderMachine,
    codec_of,
    hash64_of,
)
from repro.service.backends import make_backend
from repro.service.errors import ProtocolError
from repro.service.shard import ShardedSet


def memory_responder(
    handle: Scheme,
    items: Sequence[bytes],
    *,
    num_shards: int = 1,
    block_size: int = 1,
    slow_start: bool = False,
    max_symbols_per_shard: Optional[int] = None,
    budget_grace: float = 0.0,
    use_estimator: bool = False,
) -> ResponderMachine:
    """A responder over a fresh in-memory backend for ``items``.

    Defaults differ from the service profile on purpose: one shard,
    block size 1, no slow-start ramp and no budget — the lock-step,
    cell-exact configuration whose wire bytes are identical to the
    legacy ``repro.core.session`` fast path.
    """
    codec = codec_of(handle)
    sharded = ShardedSet(hash64_of(handle, codec), num_shards, list(items))
    backend = make_backend(handle, sharded, codec)
    return ResponderMachine(
        backend,
        handle,
        block_size=block_size,
        slow_start=slow_start,
        max_symbols_per_shard=max_symbols_per_shard,
        budget_grace=budget_grace,
        use_estimator=use_estimator,
    )


def pump(
    initiator: InitiatorMachine,
    responder: ReconcilerMachine,
    *,
    raise_on_failure: bool = True,
) -> Optional[MachineReport]:
    """Drive both machines to completion entirely in memory.

    Returns the initiator's :class:`MachineReport`; a ``Failed``
    initiator re-raises its typed error (``raise_on_failure=False``
    returns ``None`` instead, with the error left on
    ``initiator.failed``).
    """
    initiator.start()
    responder.start()
    now = 0.0
    while not initiator.finished:
        out = initiator.take_output()
        if out and not responder.finished:
            responder.bytes_received(out)
            continue
        back = responder.take_output()
        if back:
            initiator.bytes_received(back)
            continue
        if responder.wants_tick:
            responder.tick(now)
            continue
        delay = responder.next_tick_delay(now)
        if delay is not None and not responder.finished:
            now += delay
            responder.tick(now)
            continue
        # Neither bytes nor ticks can move: the responder is finished or
        # wedged.  Surface it as the peer vanishing, never a hang.
        initiator.peer_closed()
    if initiator.failed is not None and raise_on_failure:
        error = initiator.failed
        responder_error = getattr(responder, "failed", None)
        if responder_error is not None and type(error) is ProtocolError:
            # In memory both sides are one process: when the initiator
            # only knows "the peer vanished", the responder's root cause
            # (e.g. a scheme's representation-limit ValueError) is the
            # error the caller actually needs.
            error = responder_error
        raise error
    return initiator.report


def run_memory(
    handle: Scheme,
    alice_items: Sequence[bytes],
    bob_items: Sequence[bytes],
    **initiator_options,
) -> MachineReport:
    """One-call in-memory reconciliation through the engine.

    Convenience for tests and the CLI's ``--transport memory``: builds
    the matched initiator (Bob, ``bob_items``) / responder (Alice,
    ``alice_items``) pair and pumps to completion.
    """
    use_estimator = bool(initiator_options.get("use_estimator", False))
    initiator = InitiatorMachine(handle, bob_items, **initiator_options)
    responder = memory_responder(
        handle, alice_items, use_estimator=use_estimator
    )
    report = pump(initiator, responder)
    if report is None:  # pragma: no cover - pump() raised already
        raise ProtocolError("reconciliation did not complete")
    return report
