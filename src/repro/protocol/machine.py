"""The sans-io reconciliation engine: one state machine, every transport.

The paper's protocol (§3–§4) is a single loop — stream coded symbols
until the peer's peeling decoder reports done — but before this module
the repo drove that loop separately per transport (in-memory sessions,
the simulated link, the asyncio TCP service).  :class:`ReconcilerMachine`
is that loop exactly once, written sans-io: it never touches a socket,
never sleeps, never blocks.

Event/effect contract
---------------------

A transport adapter feeds a machine **events** and drains **effects**
(:mod:`repro.protocol.events`):

* events — ``start()``, ``bytes_received(data)``, ``tick(now)``,
  ``peer_closed()``.  ``tick`` drives time-based behaviour: stream
  production on the responder and budget-grace expiry; ``now`` is any
  monotonic clock the transport likes (the in-memory pump uses a
  virtual one, asyncio uses ``loop.time()``, the network simulator its
  event-heap clock).
* effects — :class:`~repro.protocol.events.SendBytes` (framed bytes to
  deliver, in order), :class:`~repro.protocol.events.Delivered` (the
  terminal :class:`~repro.protocol.events.MachineReport`), and
  :class:`~repro.protocol.events.Failed` (the terminal typed error).
  ``take_output()`` is the byte-stream convenience; ``poll_effects()``
  the full-fidelity one.

Events never raise protocol errors: every failure — malformed frames,
budget exhaustion, a peer vanishing mid-stream — surfaces as a
``Failed`` effect carrying the same typed exception family the legacy
drivers raised (``ReconcileError`` / ``SymbolBudgetExceeded`` /
``ServiceError``...), so an adapter can blindly re-raise.  After a
terminal effect the machine is ``finished`` and ignores further events;
it can never hang a transport.

Direction convention (Alice/Bob)
--------------------------------

As everywhere in the repo, *Alice* is the remote sender and *Bob* the
local receiver who recovers the difference.  The
:class:`ResponderMachine` plays Alice (it owns a
:class:`~repro.service.backends.ShardBackend` and produces coded bytes);
the :class:`InitiatorMachine` plays Bob (it opens the session, absorbs,
and finally emits ``Delivered`` with ``only_in_remote`` = A \\ B and
``only_in_local`` = B \\ A).  A full-duplex peer simply runs one of
each over the same connection.

Wire format and modes
---------------------

Both machines speak the :mod:`repro.service.framing` catalogue — the
same frames the TCP service has always used, so the engine is
wire-compatible with pre-engine peers.  Capability dispatch:

* **streaming** schemes run STREAM mode: the responder ships §6-framed
  coded symbols in ``SYMBOLS`` frames until the initiator's peeler
  reports done (``SHARD_DONE`` per shard, then ``BYE``/``STATS``);
* **fixed-capacity / one-shot serializable** schemes run SKETCH mode:
  sized sketches in ``SKETCH`` frames with client-driven doubling
  ``RETRY``s — and, when both sides were constructed with
  ``use_estimator=True``, the strata-estimator exchange (``ESTIMATE``
  frame) sizes the first sketch, the composition deployments use;
* schemes that can neither stream nor serialize (Merkle's interactive
  heal) cannot be framed; callers keep the in-process path.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.api.base import (
    ReconcileError,
    StreamingReconciler,
    SymbolBudgetExceeded,
)
from repro.api.registry import Scheme
from repro.baselines.strata import StrataEstimator
from repro.core.symbols import SymbolCodec
from repro.protocol.events import (
    ClusterInfo,
    Delivered,
    Effect,
    Failed,
    MachineReport,
    SendBytes,
    ShardTally,
)
from repro.service.backends import ShardBackend, StaleStream
from repro.service.errors import (
    IdleTimeout,
    PeerError,
    ProtocolError,
    SchemeMismatch,
    ServerBusy,
)
from repro.service.framing import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BodyReader,
    ErrorCode,
    FrameDecoder,
    FrameError,
    FrameType,
    SyncMode,
    TruncatedFrame,
    encode_frame,
    pack_busy_body,
    pack_lp_str,
    pack_uvarints,
)
from repro.service.shard import (
    hash_items,
    key_probe,
    partition_items,
    partition_with_hashes,
)

# Sketches sized from a (noisy) strata estimate get this headroom; the
# retry loop doubles from there if the estimate still undershot.
ESTIMATE_MARGIN = 1.25

# Give-up bound for sketch-mode doubling retries.
DEFAULT_MAX_ROUNDS = 4

# Sketch bound when the initiator's HELLO leaves sizing to the responder
# (mirrors repro.service.server.DEFAULT_SKETCH_BOUND).
DEFAULT_SKETCH_BOUND = 16


def codec_of(handle: Scheme) -> Optional[SymbolCodec]:
    """The scheme's SymbolCodec when its params describe one."""
    params = handle.params
    if hasattr(params, "checksum_size") and hasattr(params, "hasher"):
        from repro.api.adapters.cellpack import codec_for

        return codec_for(params)  # type: ignore[arg-type]
    return None


def hash64_of(handle: Scheme, codec: Optional[SymbolCodec]):
    """The keyed 64-bit hash both peers share, for shard placement."""
    if codec is not None:
        return codec.hasher.hash64
    from repro.hashing.keyed import Blake2bHasher

    return Blake2bHasher().hash64


def _raise_peer_error(body: bytes) -> None:
    """Map an ERROR frame to the typed exception the peer meant."""
    parser = BodyReader(body)
    code = parser.uvarint()
    if code == ErrorCode.BUSY:
        # BUSY alone carries structure past the code: uvarint
        # retry_after_ms, then the message.  Parsed defensively — a
        # peer that omitted the hint still sheds typed, just hintless.
        try:
            retry_ms = parser.uvarint()
        except FrameError:
            retry_ms = 0
        message = parser.rest().decode("utf-8", errors="replace")
        raise ServerBusy(f"server: {message}", retry_after=retry_ms / 1000.0)
    message = parser.rest().decode("utf-8", errors="replace")
    if code == ErrorCode.BUDGET:
        raise SymbolBudgetExceeded(
            f"server: {message}", symbols_sent=0, max_symbols=0
        )
    if code == ErrorCode.STALE:
        raise StaleStream(f"server: {message}")
    if code == ErrorCode.MISMATCH:
        raise SchemeMismatch(f"server: {message}")
    if code == ErrorCode.IDLE:
        raise IdleTimeout(f"server: {message}")
    if code in (ErrorCode.PROTOCOL, ErrorCode.UNSUPPORTED):
        raise ProtocolError(f"server: {message}")
    raise PeerError(code, message)


class ReconcilerMachine:
    """Shared sans-io plumbing: frame parsing, effects, terminal states.

    Subclasses implement ``_on_start`` / ``_on_frame`` / ``_on_tick`` /
    ``_on_peer_closed``; any exception they raise becomes a ``Failed``
    effect (optionally preceded by an ``ERROR`` frame — see
    ``_handle_failure``), never an exception out of an event method.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._frames = FrameDecoder(max_frame)
        self._effects: List[Effect] = []
        self._started = False
        self.finished = False
        self.failed: Optional[Exception] = None
        self.report: Optional[MachineReport] = None

    # -- events -----------------------------------------------------------

    def start(self) -> None:
        """Begin the session (the initiator emits its HELLO here)."""
        if self._started or self.finished:
            return
        self._started = True
        self._guard(self._on_start)

    def bytes_received(self, data: bytes) -> None:
        """Feed raw transport bytes; any chunking/coalescing is fine."""
        if self.finished:
            return
        self._guard(lambda: self._feed(data))

    def tick(self, now: float = 0.0) -> None:
        """Advance time-based behaviour (production, grace deadlines)."""
        if self._started and not self.finished:
            self._guard(lambda: self._on_tick(now))

    def peer_closed(self) -> None:
        """The transport saw EOF; mid-frame or mid-sync closes fail."""
        if self.finished:
            return

        def handle() -> None:
            if self._frames.pending_bytes:
                raise TruncatedFrame(
                    f"peer closed with {self._frames.pending_bytes} bytes "
                    "of a partial frame"
                )
            self._on_peer_closed()

        self._guard(handle)

    # -- effects ----------------------------------------------------------

    def poll_effects(self) -> List[Effect]:
        """Drain and return every pending effect, in order."""
        out = self._effects
        self._effects = []
        return out

    def take_output(self) -> bytes:
        """Drain effects, returning the pending bytes-to-send.

        Terminal effects are mirrored on :attr:`report` / :attr:`failed`
        at emit time, so byte-stream adapters may use only this method.
        """
        return b"".join(
            effect.data
            for effect in self.poll_effects()
            if isinstance(effect, SendBytes)
        )

    # -- scheduling hints --------------------------------------------------

    @property
    def wants_tick(self) -> bool:
        """True when an immediate ``tick`` would make progress."""
        return False

    def next_tick_delay(self, now: float) -> Optional[float]:
        """Seconds until a ``tick`` is due (None: only input can help)."""
        return None

    # -- internals ---------------------------------------------------------

    def _feed(self, data: bytes) -> None:
        for ftype, body in self._frames.feed(data):
            if self.finished:
                break
            self._on_frame(ftype, body)

    def _guard(self, fn) -> None:
        try:
            fn()
        except Exception as exc:  # typed protocol failures AND bugs: never hang
            self._handle_failure(exc)

    def _handle_failure(self, exc: Exception) -> None:
        self._fail(exc)

    def _fail(self, exc: Exception) -> None:
        if self.finished:
            return
        self.failed = exc
        self.finished = True
        self._effects.append(Failed(exc))

    def _deliver(self, report: MachineReport) -> None:
        if self.finished:
            return
        self.report = report
        self.finished = True
        self._effects.append(Delivered(report))

    def _send_frame(self, ftype: int, body: bytes = b"") -> int:
        frame = encode_frame(ftype, body)
        self._effects.append(SendBytes(frame))
        return len(frame)

    # -- subclass responsibilities ----------------------------------------

    def _on_start(self) -> None:  # pragma: no cover - overridden
        pass

    def _on_frame(self, ftype: int, body: bytes) -> None:
        raise ProtocolError(f"unexpected frame type {ftype:#x}")

    def _on_tick(self, now: float) -> None:
        pass

    def _on_peer_closed(self) -> None:
        raise ProtocolError("peer closed the connection mid-session")


class _InitiatorShard:
    """Initiator-side decoding state for one shard.

    ``tally.shard`` is the *global* shard id (== the local frame id
    outside a cluster); ``hashes`` are the items' keyed 64-bit hashes,
    computed once for placement and reused for codec checksums.
    """

    __slots__ = ("items", "hashes", "reconciler", "tally", "done", "result")

    def __init__(self, shard: int, items: list, hashes: list) -> None:
        self.items = items
        self.hashes = hashes
        self.reconciler: Optional[StreamingReconciler] = None
        self.tally = ShardTally(shard)
        self.done = False
        self.result = None


class InitiatorMachine(ReconcilerMachine):
    """Bob's side: opens the session, absorbs, delivers the difference.

    ``difference_bound`` (> 0) pre-sizes sketch mode exactly like the
    legacy drivers; ``use_estimator=True`` (agreed out of band with the
    responder, not negotiated) runs the strata exchange first and sizes
    the initial sketch as ``ceil(estimate × estimate_margin)``.
    """

    def __init__(
        self,
        handle: Scheme,
        items: Sequence[bytes],
        *,
        num_shards: int = 0,
        push: bool = False,
        max_symbols: Optional[int] = None,
        difference_bound: int = 0,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        use_estimator: bool = False,
        estimate_margin: float = ESTIMATE_MARGIN,
        capture_payloads: bool = False,
        max_frame: int = MAX_FRAME_BYTES,
        item_hashes: Optional[Sequence[int]] = None,
        expect_worker: Optional[int] = None,
    ) -> None:
        super().__init__(max_frame)
        if handle.params.symbol_size is None:
            raise ValueError(
                f"scheme {handle.name!r}: the initiator needs an explicit symbol_size"
            )
        self.handle = handle
        self.items = list(items)
        self.num_shards_wish = num_shards
        self.push = push
        self.max_symbols = max_symbols
        self.difference_bound = int(difference_bound or 0)
        self.max_rounds = max_rounds
        self.use_estimator = use_estimator
        self.estimate_margin = estimate_margin
        self.codec = codec_of(handle)
        self._hash64 = hash64_of(handle, self.codec)
        self._item_hashes = list(item_hashes) if item_hashes is not None else None
        self.expect_worker = expect_worker
        self.cluster: Optional[ClusterInfo] = None
        self._state = "welcome"
        self._mode: Optional[SyncMode] = None
        self._shards: List[_InitiatorShard] = []
        self._remaining = -1
        self._estimator_rounds = 0
        self._estimator_bytes = 0
        self._estimator_payload = 0
        self._pushed = 0
        self._push_bytes = 0
        self._only_remote: set = set()
        self._only_local: set = set()
        self._payloads: Optional[dict] = {} if capture_payloads else None

    # -- progress introspection (used by the in-memory Session wrapper) ---

    @property
    def decoded(self) -> bool:
        """True once every shard recovered its difference."""
        return self._remaining == 0

    @property
    def payload_bytes(self) -> int:
        """Coded payload bytes received so far (frame headers excluded)."""
        return self._estimator_payload + sum(
            st.tally.payload_bytes for st in self._shards
        )

    @property
    def symbols_absorbed(self) -> int:
        return sum(st.tally.symbols for st in self._shards)

    # -- machine events ----------------------------------------------------

    def _on_start(self) -> None:
        symbol_size = self.handle.params.symbol_size
        assert symbol_size is not None
        self._send_frame(
            FrameType.HELLO,
            pack_uvarints(PROTOCOL_VERSION)
            + pack_lp_str(self.handle.name)
            + pack_uvarints(
                symbol_size,
                self.codec.checksum_size if self.codec is not None else 0,
            )
            + pack_lp_str(str(getattr(self.handle.params, "hasher", "")))
            + pack_uvarints(
                key_probe(self._hash64),
                self.num_shards_wish,
                0,  # block size: responder's choice
                self.difference_bound,
            ),
        )

    def _on_frame(self, ftype: int, body: bytes) -> None:
        if ftype == FrameType.ERROR:
            _raise_peer_error(body)
        if self._state == "welcome":
            self._on_welcome(ftype, body)
        elif self._state == "stream":
            self._on_symbols(ftype, body)
        elif self._state == "estimate":
            self._on_estimate(ftype, body)
        elif self._state == "sketch":
            self._on_sketch(ftype, body)
        else:  # "stats": drain frames racing the BYE
            if ftype == FrameType.STATS:
                self._deliver(self._build_report())

    def _on_welcome(self, ftype: int, body: bytes) -> None:
        if ftype != FrameType.WELCOME:
            raise ProtocolError(f"expected WELCOME, got frame type {ftype:#x}")
        welcome = BodyReader(body)
        version = welcome.uvarint()
        try:
            mode = SyncMode(welcome.uvarint())
        except ValueError as exc:
            raise ProtocolError(f"unknown sync mode in WELCOME: {exc}") from None
        granted = welcome.uvarint()
        welcome.uvarint()  # responder block size: informational
        cluster = self._parse_cluster_tail(welcome)
        welcome.expect_end()
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {version}, client {PROTOCOL_VERSION}"
            )
        # In a cluster the worker grants its *local* shard count; the
        # wish (and placement) always speak global shards.
        total = cluster.total_shards if cluster is not None else granted
        if self.num_shards_wish and total != self.num_shards_wish:
            raise SchemeMismatch(
                f"server runs {total} shards, caller demanded "
                f"{self.num_shards_wish}"
            )
        if cluster is not None:
            if (
                self.expect_worker is not None
                and cluster.worker_index != self.expect_worker
            ):
                raise ProtocolError(
                    f"routed to worker {cluster.worker_index}, "
                    f"expected worker {self.expect_worker}"
                )
            owned = list(
                range(cluster.worker_index, total, cluster.num_workers)
            )
            if granted != len(owned):
                raise ProtocolError(
                    f"worker {cluster.worker_index} granted {granted} shards "
                    f"but the striped topology owns {len(owned)}"
                )
        else:
            owned = list(range(granted))
        self.cluster = cluster
        self._mode = mode
        hashes = self._item_hashes
        if hashes is None:
            hashes = hash_items(self._hash64, self.items)
        parts, part_hashes = partition_with_hashes(self.items, hashes, total)
        self._shards = [
            _InitiatorShard(g, parts[g], part_hashes[g]) for g in owned
        ]
        self._remaining = len(owned)
        if self._payloads is not None:
            self._payloads = {g: bytearray() for g in owned}
        if mode == SyncMode.STREAM:
            for st in self._shards:
                reconciler = self.handle.new(st.items, item_hashes=st.hashes)
                if not isinstance(reconciler, StreamingReconciler):
                    raise ProtocolError(
                        f"scheme {self.handle.name!r} announced stream mode "
                        "but is not streaming"
                    )
                st.reconciler = reconciler
            self._state = "stream"
        else:
            if self.use_estimator and len(owned) != 1:
                raise ProtocolError(
                    "the estimator composition requires a single shard"
                )
            self._state = "estimate" if self.use_estimator else "sketch"

    def _parse_cluster_tail(self, welcome: BodyReader) -> Optional[ClusterInfo]:
        """Routing metadata appended by cluster workers (absent = solo)."""
        if not welcome.remaining:
            return None
        num_workers = welcome.uvarint()
        worker_index = welcome.uvarint()
        total_shards = welcome.uvarint()
        if num_workers < 1 or not 0 <= worker_index < num_workers:
            raise ProtocolError(
                f"bad cluster tail: worker {worker_index} of {num_workers}"
            )
        if total_shards < num_workers:
            raise ProtocolError(
                f"bad cluster tail: {total_shards} shards over "
                f"{num_workers} workers"
            )
        ports = tuple(welcome.uvarint() for _ in range(num_workers))
        return ClusterInfo(num_workers, worker_index, total_shards, ports)

    def _on_symbols(self, ftype: int, body: bytes) -> None:
        if ftype != FrameType.SYMBOLS:
            raise ProtocolError(f"expected SYMBOLS, got frame type {ftype:#x}")
        parser = BodyReader(body)
        shard_id = parser.uvarint()
        payload = parser.rest()
        if shard_id >= len(self._shards):
            raise ProtocolError(f"server sent unknown shard {shard_id}")
        st = self._shards[shard_id]
        if st.done:
            return  # frames already in flight when SHARD_DONE crossed them
        if self._payloads is not None:
            self._payloads[st.tally.shard].extend(payload)
        st.tally.payload_bytes += len(payload)
        reconciler = st.reconciler
        assert reconciler is not None
        try:
            decoded = reconciler.absorb(payload)
        except ValueError as exc:
            # A scheme deserializer rejecting peer bytes is a wire-level
            # corruption, not a caller bug: keep the failure typed.
            raise ProtocolError(
                f"shard {shard_id}: malformed SYMBOLS payload: {exc}"
            ) from None
        st.tally.symbols = reconciler.symbols_absorbed
        if decoded:
            st.done = True
            st.result = reconciler.stream_result()
            self._remaining -= 1
            self._send_frame(FrameType.SHARD_DONE, pack_uvarints(shard_id))
            if not self._remaining:
                self._finish_up()
        elif (
            self.max_symbols is not None
            and st.tally.symbols >= self.max_symbols
        ):
            raise SymbolBudgetExceeded(
                f"shard {shard_id}: no decode within {self.max_symbols} "
                "coded symbols",
                symbols_sent=st.tally.symbols,
                max_symbols=self.max_symbols,
            )

    def _on_estimate(self, ftype: int, body: bytes) -> None:
        if ftype != FrameType.ESTIMATE:
            raise ProtocolError(f"expected ESTIMATE, got frame type {ftype:#x}")
        try:
            remote = StrataEstimator.deserialize(body)
        except ValueError as exc:
            raise ProtocolError(f"malformed ESTIMATE payload: {exc}") from None
        local = StrataEstimator.from_items(self.items)
        estimate = local.estimate(remote)
        self._estimator_rounds = 1
        self._estimator_bytes = remote.wire_size()
        self._estimator_payload = len(body)
        bound = max(1, math.ceil(estimate * self.estimate_margin))
        if self.difference_bound:
            bound = max(bound, self.difference_bound)
        for local, _st in enumerate(self._shards):
            self._send_frame(FrameType.RETRY, pack_uvarints(local, bound))
        self._state = "sketch"

    def _on_sketch(self, ftype: int, body: bytes) -> None:
        if ftype != FrameType.SKETCH:
            raise ProtocolError(f"expected SKETCH, got frame type {ftype:#x}")
        parser = BodyReader(body)
        shard_id = parser.uvarint()
        bound = parser.uvarint()
        blob = parser.rest()
        if shard_id >= len(self._shards):
            raise ProtocolError(f"server sent unknown shard {shard_id}")
        st = self._shards[shard_id]
        if st.done:
            return
        if self._payloads is not None:
            self._payloads[st.tally.shard].extend(blob)
        st.tally.payload_bytes += len(blob)
        sized = self.handle.sized_for(max(1, bound))
        try:
            remote = sized.deserialize(blob)
        except ValueError as exc:
            raise ProtocolError(
                f"shard {shard_id}: malformed SKETCH payload: {exc}"
            ) from None
        local = sized.new(st.items, item_hashes=st.hashes)
        diff = remote.subtract(local)
        decode = diff.decode()
        st.tally.accounted_bytes += diff.decode_wire_bytes(decode)
        if decode.success:
            st.done = True
            st.result = decode
            st.tally.symbols = decode.symbols_used
            self._remaining -= 1
            self._send_frame(FrameType.SHARD_DONE, pack_uvarints(shard_id))
            if not self._remaining:
                self._finish_up()
            return
        if not self.handle.capabilities.fixed_capacity:
            raise ReconcileError(f"{self.handle.name}: sketch did not decode")
        st.tally.rounds += 1
        if st.tally.rounds > self.max_rounds:
            raise ReconcileError(
                f"shard {shard_id}: sketch did not decode within "
                f"{self.max_rounds} doublings (last bound {bound})"
            )
        self._send_frame(
            FrameType.RETRY, pack_uvarints(shard_id, max(1, bound) * 2)
        )

    def _finish_up(self) -> None:
        for st in self._shards:
            decode = st.result
            assert decode is not None
            st.tally.only_in_remote = len(decode.remote)
            st.tally.only_in_local = len(decode.local)
            self._only_remote.update(decode.remote)
            self._only_local.update(decode.local)
        if self.push and self._only_local:
            symbol_size = self.handle.params.symbol_size
            assert symbol_size is not None
            total = (
                self.cluster.total_shards
                if self.cluster is not None
                else len(self._shards)
            )
            by_shard = partition_items(
                self._hash64, sorted(self._only_local), total
            )
            for local, st in enumerate(self._shards):
                members = by_shard[st.tally.shard]
                if not members:
                    continue
                body = pack_uvarints(local, len(members)) + b"".join(members)
                self._push_bytes += len(body)
                self._pushed += len(members)
                self._send_frame(FrameType.PUSH, body)
        self._send_frame(FrameType.BYE)
        self._state = "stats"

    def _on_peer_closed(self) -> None:
        if self._state == "stats":
            # Peer closed without STATS; the reconciliation itself is done.
            self._deliver(self._build_report())
            return
        if self._state == "welcome":
            raise ProtocolError("server closed the connection before WELCOME")
        raise ProtocolError("server closed mid-sync (missing shards undecoded)")

    def _build_report(self) -> MachineReport:
        assert self._mode is not None
        payload = self.payload_bytes
        if self._mode == SyncMode.STREAM:
            accounted = payload - self._estimator_payload
        else:
            accounted = self._estimator_bytes + sum(
                st.tally.accounted_bytes for st in self._shards
            )
        rounds = self._estimator_rounds + (
            max((st.tally.rounds for st in self._shards), default=1)
        )
        return MachineReport(
            scheme=self.handle.name,
            mode=self._mode,
            num_shards=len(self._shards),
            symbol_size=self.handle.params.symbol_size,
            only_in_remote=self._only_remote,
            only_in_local=self._only_local,
            symbols=sum(st.tally.symbols for st in self._shards),
            payload_bytes=payload,
            accounted_bytes=accounted,
            rounds=rounds,
            pushed=self._pushed,
            push_bytes=self._push_bytes,
            per_shard=[st.tally for st in self._shards],
            payloads=self._payloads,
            cluster=self.cluster,
        )


class _ResponderShard:
    """Responder-side production state for one stream-mode shard."""

    __slots__ = ("shard", "cursor", "done", "ramp", "grace_deadline")

    def __init__(self, shard: int, cursor, ramp: int) -> None:
        self.shard = shard
        self.cursor = cursor
        self.done = False
        self.ramp = ramp
        self.grace_deadline: Optional[float] = None


class ResponderMachine(ReconcilerMachine):
    """Alice's side: validates the HELLO, then serves the backend.

    Stream-mode production happens on ``tick`` — one block per
    not-yet-done shard per tick, ramping from 8 cells up to
    ``block_size`` (``slow_start=False`` pins every block to
    ``block_size``, which the lock-step transports use for cell-exact
    termination).  Budget exhaustion arms a ``budget_grace`` deadline
    (symbols already in flight may still decode); ``tick``-ing past it
    fails the session with the typed ``SymbolBudgetExceeded`` and an
    ``ERROR`` frame, exactly like the asyncio server always did.
    """

    def __init__(
        self,
        backend: ShardBackend,
        handle: Scheme,
        *,
        block_size: int = 64,
        slow_start: bool = True,
        max_symbols_per_shard: Optional[int] = None,
        budget_grace: float = 1.0,
        max_sketch_bound: int = 1 << 16,
        use_estimator: bool = False,
        max_frame: int = MAX_FRAME_BYTES,
        cluster: Optional[ClusterInfo] = None,
    ) -> None:
        super().__init__(max_frame)
        self.backend = backend
        self.handle = handle
        self.cluster = cluster
        self.codec = codec_of(handle)
        self._hash64 = hash64_of(handle, self.codec)
        self.key_probe = key_probe(self._hash64)
        self.block_size = block_size
        self.slow_start = slow_start
        self.max_symbols_per_shard = max_symbols_per_shard
        self.budget_grace = budget_grace
        self.max_sketch_bound = max_sketch_bound
        self.use_estimator = use_estimator
        self.symbols_sent = 0
        self.bytes_sent = 0
        self.pushes_applied = 0
        self.complete = False
        self.error_codes: List[int] = []
        self._mode: Optional[SyncMode] = None
        self._streams: List[_ResponderShard] = []
        self._sketch_bound = DEFAULT_SKETCH_BOUND
        self._state = "hello"

    # -- failure plumbing --------------------------------------------------

    def _handle_failure(self, exc: Exception) -> None:
        if isinstance(exc, SymbolBudgetExceeded):
            self._send_error(ErrorCode.BUDGET, str(exc))
        elif isinstance(exc, StaleStream):
            self._send_error(ErrorCode.STALE, str(exc))
        # FrameError and internal failures drop the session silently,
        # matching the asyncio server (no ERROR reply to garbage).
        self._fail(exc)

    def _send_error(self, code: ErrorCode, message: str) -> None:
        self.error_codes.append(int(code))
        size = self._send_frame(
            FrameType.ERROR,
            pack_uvarints(int(code)) + message.encode("utf-8"),
        )
        if self._mode == SyncMode.STREAM:
            self.bytes_sent += size

    def _protocol_fail(self, code: ErrorCode, message: str) -> None:
        self._send_error(code, message)
        self._fail(ProtocolError(message))

    def deadline_expired(self, message: str = "session idle past deadline") -> None:
        """Hosting transport declares the peer stalled.

        The machine cannot observe wall-clock silence itself (sans-io);
        the server calls this when a session blows its idle deadline.
        Emits a typed ``ERROR`` frame — so a merely-slow client fails
        with :class:`~repro.service.errors.IdleTimeout` rather than a
        mute connection reset — and fails the session.
        """
        if self.finished:
            return
        self._send_error(ErrorCode.IDLE, message)
        self._fail(IdleTimeout(message))

    def shed(self, retry_after: float, message: str = "server busy") -> None:
        """Hosting transport sheds this session for overload control.

        Like :meth:`deadline_expired`, the trigger lives outside the
        sans-io machine (the server's byte/session bound tripped
        mid-session).  Emits the typed ``ErrorCode.BUSY`` frame with
        the server's retry-after hint and fails the session with
        :class:`~repro.service.errors.ServerBusy`, so the client backs
        off and retries instead of diagnosing a mute reset.
        """
        if self.finished:
            return
        self.error_codes.append(int(ErrorCode.BUSY))
        size = self._send_frame(
            FrameType.ERROR, pack_busy_body(retry_after, message)
        )
        if self._mode == SyncMode.STREAM:
            self.bytes_sent += size
        self._fail(ServerBusy(message, retry_after=retry_after))

    # -- machine events ----------------------------------------------------

    def _on_frame(self, ftype: int, body: bytes) -> None:
        if self._state == "hello":
            self._on_hello(ftype, body)
        elif self._state == "stream":
            self._on_stream_frame(ftype, body)
        else:
            self._on_sketch_frame(ftype, body)

    def _on_hello(self, ftype: int, body: bytes) -> None:
        if ftype != FrameType.HELLO:
            self._protocol_fail(
                ErrorCode.PROTOCOL, f"expected HELLO, got frame type {ftype:#x}"
            )
            return
        if not self._check_hello(BodyReader(body)):
            return
        mode = self.backend.mode
        welcome = pack_uvarints(
            PROTOCOL_VERSION,
            int(mode),
            self.backend.num_shards,
            self.block_size,
        )
        if self.cluster is not None:
            # Cluster tail: absent entirely outside a worker pool, so
            # solo WELCOMEs stay byte-identical to every golden capture.
            c = self.cluster
            welcome += pack_uvarints(
                c.num_workers, c.worker_index, c.total_shards, *c.ports
            )
        self._send_frame(FrameType.WELCOME, welcome)
        self._mode = mode
        if mode == SyncMode.STREAM:
            ramp = min(8, self.block_size) if self.slow_start else self.block_size
            self._streams = [
                _ResponderShard(shard, self.backend.open_stream(shard), ramp)
                for shard in range(self.backend.num_shards)
            ]
            self._state = "stream"
            return
        self._state = "sketch"
        if self.use_estimator:
            estimator = StrataEstimator.from_items(self._all_items())
            blob = estimator.serialize()
            self.bytes_sent += len(blob)
            self._send_frame(FrameType.ESTIMATE, blob)
        else:
            for shard in range(self.backend.num_shards):
                self._send_sketch(shard, self._sketch_bound)

    def _check_hello(self, body: BodyReader) -> bool:
        version = body.uvarint()
        scheme = body.lp_str()
        symbol_size = body.uvarint()
        checksum_size = body.uvarint()
        hasher = body.lp_str()
        probe = body.uvarint()
        num_shards = body.uvarint()
        body.uvarint()  # block_size wish: informational, responder decides
        self._sketch_bound = body.uvarint() or DEFAULT_SKETCH_BOUND
        body.expect_end()
        if version != PROTOCOL_VERSION:
            return self._reject(
                ErrorCode.PROTOCOL,
                f"protocol version {version} unsupported "
                f"(server: {PROTOCOL_VERSION})",
            )
        if scheme != self.handle.name:
            return self._reject(
                ErrorCode.MISMATCH,
                f"scheme mismatch: client {scheme!r}, server {self.handle.name!r}",
            )
        expected_symbol = self.handle.params.symbol_size
        if symbol_size != expected_symbol:
            return self._reject(
                ErrorCode.MISMATCH,
                f"symbol_size mismatch: client {symbol_size}, "
                f"server {expected_symbol}",
            )
        if self.codec is not None and checksum_size != self.codec.checksum_size:
            return self._reject(
                ErrorCode.MISMATCH,
                f"checksum_size mismatch: client {checksum_size}, "
                f"server {self.codec.checksum_size}",
            )
        expected_hasher = getattr(self.handle.params, "hasher", "")
        if hasher and expected_hasher and hasher != expected_hasher:
            return self._reject(
                ErrorCode.MISMATCH,
                f"hasher mismatch: client {hasher!r}, server {expected_hasher!r}",
            )
        if probe != self.key_probe:
            return self._reject(
                ErrorCode.MISMATCH,
                "hash key probe mismatch: peers hold different keys",
            )
        expected_shards = (
            self.cluster.total_shards
            if self.cluster is not None
            else self.backend.num_shards
        )
        if num_shards and num_shards != expected_shards:
            return self._reject(
                ErrorCode.MISMATCH,
                f"shard count mismatch: client expects {num_shards}, "
                f"server runs {expected_shards}",
            )
        return True

    def _reject(self, code: ErrorCode, message: str) -> bool:
        self._send_error(code, message)
        self._fail(SchemeMismatch(message) if code == ErrorCode.MISMATCH
                   else ProtocolError(message))
        return False

    def _all_items(self) -> list:
        out: list = []
        for shard in range(self.backend.num_shards):
            out.extend(self.backend.sharded.shards[shard])
        return out

    # -- stream mode -------------------------------------------------------

    def _on_stream_frame(self, ftype: int, body: bytes) -> None:
        reader = BodyReader(body)
        if ftype == FrameType.SHARD_DONE:
            shard = reader.uvarint()
            reader.expect_end()
            if shard >= len(self._streams):
                self._protocol_fail(ErrorCode.PROTOCOL, f"no such shard {shard}")
                return
            self._streams[shard].done = True
            return
        if ftype == FrameType.PUSH:
            self._apply_push(reader)
            return
        if ftype == FrameType.RETRY:
            # RETRY is a sketch-mode frame; in stream mode the backend
            # has no sketches to rebuild, so it is a protocol violation.
            self._protocol_fail(
                ErrorCode.PROTOCOL, "RETRY is invalid in stream mode"
            )
            return
        if ftype == FrameType.BYE:
            self._send_stats()
            return
        self._protocol_fail(
            ErrorCode.PROTOCOL, f"unexpected frame type {ftype:#x} from client"
        )

    def _on_tick(self, now: float) -> None:
        if self._state != "stream":
            return
        budget = self.max_symbols_per_shard
        for st in self._streams:
            if st.done:
                continue
            sent = st.cursor.symbols_sent
            if budget is not None and sent >= budget:
                if st.grace_deadline is None:
                    # Budget spent; symbols are still in flight, so give
                    # the client one grace period to report decode
                    # before declaring the session runaway.
                    st.grace_deadline = now + self.budget_grace
                    continue
                if now >= st.grace_deadline:
                    raise SymbolBudgetExceeded(
                        f"shard {st.shard}: {sent} symbols served without "
                        f"decode (budget {budget})",
                        symbols_sent=sent,
                        max_symbols=budget,
                    )
                continue
            if self.slow_start:
                cells = st.ramp
                st.ramp = min(st.ramp * 2, self.block_size)
            else:
                cells = self.block_size
            if budget is not None:
                cells = min(cells, budget - sent)
            payload = st.cursor.next_block(cells)
            self.symbols_sent += cells
            self.bytes_sent += self._send_frame(
                FrameType.SYMBOLS, pack_uvarints(st.shard) + payload
            )

    @property
    def wants_tick(self) -> bool:
        if self.finished or self._state != "stream":
            return False
        budget = self.max_symbols_per_shard
        for st in self._streams:
            if st.done:
                continue
            if budget is None or st.cursor.symbols_sent < budget:
                return True
            if st.grace_deadline is None:
                return True  # a tick is needed to arm the grace deadline
        return False

    def next_tick_delay(self, now: float) -> Optional[float]:
        if self.finished or self._state != "stream":
            return None
        deadlines = [
            st.grace_deadline
            for st in self._streams
            if not st.done and st.grace_deadline is not None
        ]
        if self.wants_tick:
            return 0.0
        if deadlines:
            return max(0.0, min(deadlines) - now)
        return None

    # -- sketch mode -------------------------------------------------------

    def _on_sketch_frame(self, ftype: int, body: bytes) -> None:
        reader = BodyReader(body)
        if ftype == FrameType.RETRY:
            shard = reader.uvarint()
            bound = reader.uvarint()
            reader.expect_end()
            if shard >= self.backend.num_shards:
                self._protocol_fail(ErrorCode.PROTOCOL, f"no such shard {shard}")
                return
            if bound > self.max_sketch_bound:
                message = (
                    f"shard {shard}: sketch bound {bound} exceeds server cap "
                    f"{self.max_sketch_bound}"
                )
                self._send_error(ErrorCode.BUDGET, message)
                self._fail(ReconcileError(message))
                return
            self._send_sketch(shard, bound)
            return
        if ftype == FrameType.SHARD_DONE:
            return  # bookkeeping only; nothing streams in sketch mode
        if ftype == FrameType.PUSH:
            self._apply_push(reader)
            return
        if ftype == FrameType.BYE:
            self._send_stats()
            return
        self._protocol_fail(
            ErrorCode.PROTOCOL, f"unexpected frame type {ftype:#x}"
        )

    def _send_sketch(self, shard: int, bound: int) -> None:
        blob = self.backend.build_sketch(shard, bound)
        self.bytes_sent += len(blob)
        self._send_frame(FrameType.SKETCH, pack_uvarints(shard, bound) + blob)

    # -- shared ------------------------------------------------------------

    def _send_stats(self) -> None:
        body = pack_uvarints(
            self.symbols_sent, self.bytes_sent, self.pushes_applied
        )
        size = self._send_frame(FrameType.STATS, body)
        if self._mode == SyncMode.STREAM:
            self.bytes_sent += size
        self.complete = True
        self.finished = True

    def _apply_push(self, reader: BodyReader) -> None:
        reader.uvarint()  # shard hint; placement is re-derived locally
        count = reader.uvarint()
        symbol_size = self.handle.params.symbol_size
        assert symbol_size is not None
        for _ in range(count):
            item = reader.raw(symbol_size)
            try:
                self.backend.add(item)
            except KeyError:
                continue  # another session already pushed it
            self.pushes_applied += 1
        reader.expect_end()

    def _on_peer_closed(self) -> None:
        # The client left without BYE: the session simply ends
        # incomplete (the adapter counts it as dropped), like the
        # asyncio server's read loop returning on EOF.
        self.finished = True
