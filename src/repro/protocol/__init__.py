"""``repro.protocol`` — the transport-agnostic reconciliation engine.

One sans-io state machine per side (:class:`InitiatorMachine` /
:class:`ResponderMachine`, see :mod:`repro.protocol.machine` for the
event/effect contract and the Alice/Bob direction convention) drives
every transport in the repo:

* ``repro.api.Session`` / ``repro.api.reconcile`` pump the machines in
  memory (:func:`repro.protocol.pump.pump`);
* ``repro.net.protocols.machine_sync`` drives them through the
  discrete-event simulator's bandwidth/latency/loss links;
* ``repro.service`` shuttles the same frames over asyncio TCP.
"""

from repro.protocol.events import (
    ClusterInfo,
    Delivered,
    Effect,
    Failed,
    MachineReport,
    SendBytes,
    ShardTally,
)
from repro.protocol.machine import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_SKETCH_BOUND,
    ESTIMATE_MARGIN,
    InitiatorMachine,
    ReconcilerMachine,
    ResponderMachine,
    codec_of,
    hash64_of,
)
from repro.protocol.pump import memory_responder, pump, run_memory

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_SKETCH_BOUND",
    "ESTIMATE_MARGIN",
    "ClusterInfo",
    "Delivered",
    "Effect",
    "Failed",
    "InitiatorMachine",
    "MachineReport",
    "ReconcilerMachine",
    "ResponderMachine",
    "SendBytes",
    "ShardTally",
    "codec_of",
    "hash64_of",
    "memory_responder",
    "pump",
    "run_memory",
]
