"""Events, effects, and the outcome record of the protocol engine.

The sans-io contract (see :mod:`repro.protocol.machine`): a transport
feeds a :class:`~repro.protocol.machine.ReconcilerMachine` **events** —
``start()``, ``bytes_received(data)``, ``tick(now)``, ``peer_closed()``
— and in return drains **effects**:

:class:`SendBytes`
    Framed bytes the transport must deliver to the peer, in order.
:class:`Delivered`
    Terminal success: carries the :class:`MachineReport` the transport
    (or its caller) turns into a ``ReconcileResult`` / ``SyncResult``.
:class:`Failed`
    Terminal failure: carries the typed exception (the same
    ``ReconcileError`` / ``ServiceError`` family every legacy driver
    raised) for the transport to re-raise or log.

A machine never blocks, sleeps, or touches a socket; after a terminal
effect it is ``finished`` and ignores further events.  That is the
whole trick: the asyncio service, the in-memory pump, and the
discrete-event network simulator all drive the *same* protocol logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Set

if TYPE_CHECKING:  # import-free at runtime: this module must not pull
    from repro.service.framing import SyncMode  # repro.service (cycle)


class Effect:
    """Marker base class for everything a machine asks a transport to do."""

    __slots__ = ()


@dataclass
class SendBytes(Effect):
    """Deliver ``data`` to the peer (already framed, order matters)."""

    data: bytes


@dataclass
class Delivered(Effect):
    """The reconciliation finished; ``report`` holds everything learned."""

    report: "MachineReport"


@dataclass
class Failed(Effect):
    """The reconciliation failed with the typed ``error``."""

    error: Exception


@dataclass(frozen=True)
class ClusterInfo:
    """Worker-pool routing metadata carried in a cluster WELCOME tail.

    A worker serving on behalf of a supervisor appends this to its
    WELCOME: the pool size, which worker answered, the *global* shard
    count, and one listening port per worker (all equal in
    SO_REUSEPORT single-port mode).  Worker ``w`` of ``num_workers``
    owns exactly the global shards ``{g : g % num_workers == w}``, so
    the tuple fully determines routing — no per-shard table needed.
    """

    num_workers: int
    worker_index: int
    total_shards: int
    ports: tuple = ()


@dataclass
class ShardTally:
    """Per-shard accounting, mirrored into service ``ShardReport``s."""

    shard: int
    symbols: int = 0
    payload_bytes: int = 0
    accounted_bytes: int = 0
    rounds: int = 1
    only_in_remote: int = 0
    only_in_local: int = 0


@dataclass
class MachineReport:
    """Scheme- and transport-independent outcome of one machine run.

    Two byte totals coexist because the repo keeps two accountings:

    ``payload_bytes``
        Coded bytes actually carried inside SYMBOLS/SKETCH/ESTIMATE
        frame bodies — what the service's ``SyncResult.bytes_received``
        has always reported.
    ``accounted_bytes``
        The paper's §7.1 accounting (estimator ``wire_size`` plus each
        round's ``decode_wire_bytes``) — what ``reconcile()`` has always
        reported as ``bytes_on_wire``.  For streams the two coincide.
    """

    scheme: str
    mode: "SyncMode"
    num_shards: int
    symbol_size: Optional[int]
    only_in_remote: Set[bytes] = field(default_factory=set)
    only_in_local: Set[bytes] = field(default_factory=set)
    symbols: int = 0
    payload_bytes: int = 0
    accounted_bytes: int = 0
    rounds: int = 1
    pushed: int = 0
    push_bytes: int = 0
    per_shard: list = field(default_factory=list)
    payloads: Optional[dict] = None
    """Raw per-shard payload bytes, captured only when asked (goldens)."""

    cluster: Optional["ClusterInfo"] = None
    """Routing metadata from a cluster WELCOME tail (None outside one)."""

    @property
    def difference_size(self) -> int:
        return len(self.only_in_remote) + len(self.only_in_local)
