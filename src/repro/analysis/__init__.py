"""Analysis tools for §5 and the simulation figures (4, 5, 6, 15).

``density_evolution`` — closed-form asymptotics from Theorem 5.1:
    the overhead threshold η*(α), and the fixed-point recovered fraction
    as a function of symbols received.
``montecarlo``        — finite-d simulation harness running the *real*
    encoder/decoder over 64-bit items with a cheap integer hash.
"""

from repro.analysis.density_evolution import (
    eta_star,
    f_limit,
    optimal_alpha,
    recovered_fraction_curve,
    recovered_fraction_limit,
)
from repro.analysis.montecarlo import (
    IntSymbolCodec,
    OverheadStats,
    overhead_stats,
    recovered_fraction_sim,
    simulate_overhead_once,
)

__all__ = [
    "IntSymbolCodec",
    "OverheadStats",
    "eta_star",
    "f_limit",
    "optimal_alpha",
    "overhead_stats",
    "recovered_fraction_curve",
    "recovered_fraction_limit",
    "recovered_fraction_sim",
    "simulate_overhead_once",
]
