"""Density evolution for Rateless IBLT (paper §5, Theorem 5.1).

As the number of source symbols n → ∞ with m = ηn coded symbols, the
probability that a random edge attaches to an unrecovered source evolves
per peeling iteration as

    q  ←  f(q) = exp( (1/α) · Ei(−q/(αη)) ),

where Ei is the exponential integral.  Decoding succeeds w.h.p. iff
f(q) < q for all q ∈ (0, 1]; the threshold η*(α) is the least η with that
property.  At the paper's α = 0.5, η* ≈ 1.3455 (Corollary 5.2's "1.35");
the optimum is α ≈ 0.64 with η* ≈ 1.31.
"""

from __future__ import annotations

import math

try:
    import numpy as np
    from scipy.special import expi
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None
    expi = None

from repro.core.params import DEFAULT_ALPHA


def _require_deps() -> None:
    """The closed-form §5 analysis is numpy/scipy-backed (Ei has no
    stdlib form); the rest of the repo stays importable without them."""
    if np is None or expi is None:
        raise ImportError(
            "repro.analysis.density_evolution needs numpy and scipy "
            "(pip install numpy scipy)"
        )


def f_limit(q: float, eta: float, alpha: float = DEFAULT_ALPHA) -> float:
    """The density-evolution update f(q) in the n → ∞ limit."""
    _require_deps()
    if q <= 0.0:
        return 0.0
    if eta <= 0.0:
        raise ValueError("eta must be positive")
    return math.exp(expi(-q / (alpha * eta)) / alpha)


def _q_grid(points: int = 4000) -> "np.ndarray":
    """A grid over (0, 1] dense near 0, where the condition binds last."""
    _require_deps()
    log_part = np.logspace(-7, 0, points // 2, endpoint=False)
    lin_part = np.linspace(1e-3, 1.0, points // 2)
    return np.unique(np.concatenate([log_part, lin_part, [1.0]]))


def satisfies_de_condition(
    eta: float, alpha: float = DEFAULT_ALPHA, grid: np.ndarray | None = None
) -> bool:
    """Check Theorem 5.1's condition ∀q ∈ (0,1]: f(q) < q on a fine grid."""
    _require_deps()
    if grid is None:
        grid = _q_grid()
    values = np.exp(expi(-grid / (alpha * eta)) / alpha)
    return bool(np.all(values < grid))


def eta_star(
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = 1e-5,
    lo: float = 1.0,
    hi: float = 16.0,
) -> float:
    """The asymptotic overhead threshold η*(α) by bisection.

    >>> abs(eta_star(0.5) - 1.3455) < 0.005
    True
    """
    grid = _q_grid()
    if satisfies_de_condition(lo, alpha, grid):
        return lo
    if not satisfies_de_condition(hi, alpha, grid):
        raise ValueError(f"eta* above search bound {hi} for alpha={alpha}")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if satisfies_de_condition(mid, alpha, grid):
            hi = mid
        else:
            lo = mid
    return hi


def optimal_alpha(
    alpha_grid: np.ndarray | None = None,
) -> tuple[float, float]:
    """(α_opt, η*(α_opt)) over a grid — the paper reports (0.64, 1.31)."""
    if alpha_grid is None:
        alpha_grid = np.arange(0.30, 1.01, 0.01)
    best_alpha = float(alpha_grid[0])
    best_eta = eta_star(best_alpha)
    for alpha in alpha_grid[1:]:
        eta = eta_star(float(alpha))
        if eta < best_eta:
            best_eta = eta
            best_alpha = float(alpha)
    return best_alpha, best_eta


def recovered_fraction_limit(
    eta: float,
    alpha: float = DEFAULT_ALPHA,
    max_iterations: int = 100_000,
    tolerance: float = 1e-12,
) -> float:
    """The asymptotic fraction of sources recovered before peeling stalls.

    Iterates q ← f(q) from q = 1; the largest fixed point q∞ is where the
    decoder stalls, so the recovered fraction is 1 − q∞ (Fig 6's "Density
    Evolution" curve).
    """
    q = 1.0
    for _ in range(max_iterations):
        nxt = f_limit(q, eta, alpha)
        if q - nxt < tolerance:
            break
        q = nxt
    return 1.0 - q


def recovered_fraction_curve(
    eta_values: list[float] | np.ndarray, alpha: float = DEFAULT_ALPHA
) -> list[tuple[float, float]]:
    """[(η, recovered fraction)] — the DE curve plotted in Fig 6."""
    return [
        (float(eta), recovered_fraction_limit(float(eta), alpha))
        for eta in eta_values
    ]
