"""Monte Carlo harness for finite-d behaviour (Figs 4, 5, 6, 15).

Runs the *real* incremental encoder and peeling decoder (the exact code
paths of ``repro.core``) over 64-bit integer items, with the splitmix64
finaliser as the checksum hash — keying is irrelevant here and the cheap
hash makes laptop-scale sweeps practical ("Monte Carlo fast
path").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import IrregularConfig
from repro.core.mapping import IndexGenerator
from repro.core.params import DEFAULT_ALPHA
from repro.hashing.prng import mix64

_INV_2_64 = 1.0 / 18446744073709551616.0


class IntSymbolCodec:
    """Duck-typed :class:`~repro.core.symbols.SymbolCodec` for u64 items.

    Items are already uniform 64-bit integers; the checksum is one
    splitmix64 finalisation, and ``to_bytes`` round-trips through 8-byte
    little-endian like the real codec.
    """

    __slots__ = ("symbol_size", "checksum_size", "alpha", "irregular", "_key")

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        irregular: Optional[IrregularConfig] = None,
        key: int = 0,
    ) -> None:
        self.symbol_size = 8
        self.checksum_size = 8
        self.alpha = alpha
        self.irregular = irregular
        self._key = key

    def to_int(self, data: bytes) -> int:
        return int.from_bytes(data, "little")

    def to_bytes(self, value: int) -> bytes:
        return value.to_bytes(8, "little")

    def checksum_int(self, value: int) -> int:
        return mix64(value ^ self._key)

    def checksum_data(self, data: bytes) -> int:
        return self.checksum_int(int.from_bytes(data, "little"))

    def alpha_for(self, checksum: int) -> float:
        if self.irregular is None:
            return self.alpha
        return self.irregular.alpha_for(checksum * _INV_2_64)

    def new_mapping(self, checksum: int) -> IndexGenerator:
        return IndexGenerator(checksum, self.alpha_for(checksum))

    def compatible_with(self, other: object) -> bool:
        return (
            isinstance(other, IntSymbolCodec)
            and self.alpha == other.alpha
            and self.irregular == other.irregular
            and self._key == other._key
        )


@dataclass
class OverheadStats:
    """Mean/stddev of coded symbols per difference over repeated runs."""

    difference_size: int
    runs: int
    mean: float
    std: float
    samples: list[float]

    @classmethod
    def from_samples(cls, d: int, samples: Sequence[float]) -> "OverheadStats":
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        return cls(
            difference_size=d,
            runs=len(samples),
            mean=mean,
            std=math.sqrt(var),
            samples=list(samples),
        )


def _random_values(n: int, rng: random.Random) -> list[int]:
    """n distinct nonzero u64s."""
    values: set[int] = set()
    while len(values) < n:
        value = rng.getrandbits(64)
        if value:
            values.add(value)
    return list(values)


def simulate_overhead_once(
    n: int,
    rng: random.Random,
    alpha: float = DEFAULT_ALPHA,
    irregular: Optional[IrregularConfig] = None,
) -> int:
    """Smallest prefix length that decodes a random n-item difference.

    Streams coded symbols one at a time into the incremental decoder and
    stops at the first full recovery — exactly the protocol's stopping
    rule, so the returned m is the communication the protocol would use.
    """
    codec = IntSymbolCodec(alpha=alpha, irregular=irregular, key=rng.getrandbits(64))
    encoder = RatelessEncoder(codec)
    for value in _random_values(n, rng):
        encoder.add_value(value)
    decoder = RatelessDecoder(codec)
    produced = 0
    while not decoder.decoded:
        decoder.add_coded_symbol(encoder.produce_next())
        produced += 1
    return produced


def overhead_stats(
    n: int,
    runs: int,
    alpha: float = DEFAULT_ALPHA,
    irregular: Optional[IrregularConfig] = None,
    seed: int = 0,
) -> OverheadStats:
    """Overhead (m/d) statistics across ``runs`` random sets of size n."""
    rng = random.Random(seed ^ (n * 0x9E3779B97F4A7C15))
    samples = [
        simulate_overhead_once(n, rng, alpha, irregular) / n for _ in range(runs)
    ]
    return OverheadStats.from_samples(n, samples)


def recovered_fraction_sim(
    n: int,
    eta_values: Sequence[float],
    runs: int = 10,
    alpha: float = DEFAULT_ALPHA,
    irregular: Optional[IrregularConfig] = None,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """[(η, mean recovered fraction after ηn symbols)] — Fig 6's points.

    Each run streams max(η)·n symbols once, checkpointing the recovered
    count at every requested η.
    """
    eta_sorted = sorted(set(float(e) for e in eta_values))
    max_symbols = int(math.ceil(eta_sorted[-1] * n))
    totals = [0.0] * len(eta_sorted)
    rng = random.Random(seed ^ (n * 0xD1B54A32D192ED03))
    for _ in range(runs):
        codec = IntSymbolCodec(
            alpha=alpha, irregular=irregular, key=rng.getrandbits(64)
        )
        encoder = RatelessEncoder(codec)
        for value in _random_values(n, rng):
            encoder.add_value(value)
        decoder = RatelessDecoder(codec)
        checkpoint = 0
        for produced in range(1, max_symbols + 1):
            decoder.add_coded_symbol(encoder.produce_next())
            while (
                checkpoint < len(eta_sorted)
                and produced >= eta_sorted[checkpoint] * n
            ):
                recovered = len(decoder.remote_values()) + len(
                    decoder.local_values()
                )
                totals[checkpoint] += recovered / n
                checkpoint += 1
            if checkpoint == len(eta_sorted):
                break
    return [
        (eta, total / runs) for eta, total in zip(eta_sorted, totals)
    ]
