"""Decode-failure probability vs overhead margin.

The rateless protocol never *fails* — Bob just keeps receiving — but
engineering decisions (how many symbols to prefetch, how to size a fixed
sketch for a datagram, when to give up and fall back) need the complement
question: *if I ship only m = c·d coded symbols, how likely is decoding
to complete?*  This module estimates that curve by Monte Carlo and
derives provisioning recommendations from it, the rateless analogue of
the regular-IBLT sizing tables.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.montecarlo import IntSymbolCodec, _random_values
from repro.core.decoder import RatelessDecoder
from repro.core.encoder import RatelessEncoder
from repro.core.irregular import IrregularConfig
from repro.core.params import DEFAULT_ALPHA


@dataclass
class FailureCurve:
    """P(decode incomplete | m = c·d) sampled over overhead factors c."""

    difference_size: int
    runs: int
    points: list[tuple[float, float]]  # (overhead factor, failure prob)

    def failure_at(self, overhead: float) -> float:
        """Failure probability at the nearest sampled overhead ≤ given."""
        best = 1.0
        for c, p in self.points:
            if c <= overhead + 1e-9:
                best = p
        return best

    def overhead_for(self, target_failure: float) -> Optional[float]:
        """Smallest sampled overhead whose failure prob ≤ target."""
        for c, p in sorted(self.points):
            if p <= target_failure:
                return c
        return None


def failure_curve(
    d: int,
    overheads: Sequence[float],
    runs: int = 100,
    alpha: float = DEFAULT_ALPHA,
    irregular: Optional[IrregularConfig] = None,
    seed: int = 0,
) -> FailureCurve:
    """Estimate the failure curve for difference size ``d``.

    Each run streams max(overheads)·d symbols once and records, at every
    requested overhead checkpoint, whether decoding had completed.
    """
    overheads = sorted(set(float(c) for c in overheads))
    max_symbols = int(math.ceil(overheads[-1] * d))
    failures = [0] * len(overheads)
    rng = random.Random(seed ^ (d * 0xA24BAED4963EE407))
    for _ in range(runs):
        codec = IntSymbolCodec(
            alpha=alpha, irregular=irregular, key=rng.getrandbits(64)
        )
        encoder = RatelessEncoder(codec)
        for value in _random_values(d, rng):
            encoder.add_value(value)
        decoder = RatelessDecoder(codec)
        decoded_at: Optional[int] = None
        for produced in range(1, max_symbols + 1):
            decoder.add_coded_symbol(encoder.produce_next())
            if decoder.decoded:
                decoded_at = produced
                break
        for i, c in enumerate(overheads):
            if decoded_at is None or decoded_at > c * d:
                failures[i] += 1
    points = [(c, failures[i] / runs) for i, c in enumerate(overheads)]
    return FailureCurve(difference_size=d, runs=runs, points=points)


def recommended_prefix(
    d: int,
    target_failure: float = 0.01,
    runs: int = 200,
    seed: int = 0,
) -> int:
    """Symbols to prefetch for a d-item difference at a failure target.

    A datagram-style deployment (send one fixed sketch, no feedback
    channel) uses this the way regular IBLT uses its sizing table — but
    here an undershoot only costs another round, never a restart.
    """
    if d < 1:
        raise ValueError("difference size must be positive")
    overheads = [1.0 + 0.1 * k for k in range(0, 26)]
    curve = failure_curve(d, overheads, runs=runs, seed=seed)
    overhead = curve.overhead_for(target_failure)
    if overhead is None:
        overhead = overheads[-1]
    return int(math.ceil(overhead * d))
